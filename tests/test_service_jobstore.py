"""Durable job store: journal, dedup, quotas, recovery (repro.service).

The crash-safety contract under test: the journal is the source of
truth, the in-memory view is a pure fold over it, and a process killed
at *any* byte of a journal append leaves a store that reopens cleanly
and loses at most the work the torn record described.  The
truncate-at-every-offset test drives exactly that property.
"""

from __future__ import annotations

import json

import pytest

from repro.service import (
    JobRequest,
    JobStore,
    JournalError,
    JsonlJournal,
    QuotaExceeded,
    ServiceError,
    request_key,
)
from repro.service.jobstore import DONE, FAILED, QUEUED, RUNNING


def fresh_store(tmp_path, **kwargs):
    return JobStore(tmp_path / "store", **kwargs)


def submit_sim(store, benchmark="gcc", client="default", **params):
    request = JobRequest(
        kind="simulate",
        params={"benchmark": benchmark, "core": "braid", "scale": 0.05,
                "width": 8, "max_instructions": 3000, **params},
        client=client,
    )
    return store.submit(request)


class TestRequestKey:
    def test_key_is_canonical_over_ordering_and_tuples(self):
        a = request_key("simulate", {"benchmark": "gcc", "scale": 0.2})
        b = request_key("simulate", {"scale": 0.2, "benchmark": "gcc"})
        assert a == b
        assert request_key("sweep", {"benchmarks": ("gcc", "mcf")}) == \
            request_key("sweep", {"benchmarks": ["gcc", "mcf"]})

    def test_key_separates_kinds_and_params(self):
        params = {"benchmarks": ["gcc"]}
        assert request_key("sweep", params) != request_key("faults", params)
        assert request_key("sweep", params) != request_key(
            "sweep", {"benchmarks": ["mcf"]}
        )

    def test_non_json_params_are_rejected(self):
        with pytest.raises(ServiceError):
            request_key("simulate", {"benchmark": object()})


class TestSubmitAndDedup:
    def test_submit_queues_and_journals(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, coalesced = submit_sim(store)
        assert not coalesced
        job = store.job(job_id)
        assert job.status == QUEUED and job.client == "default"
        assert store.counters()["submitted"] == 1
        store.close()

    def test_identical_requests_coalesce_across_clients(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store, client="alice")
        dup_id, coalesced = submit_sim(store, client="bob")
        assert coalesced and dup_id == job_id
        assert store.counters()["coalesced"] == 1
        assert store.job(job_id).coalesced == 1
        store.close()

    def test_coalesce_counter_survives_restart(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store, client="alice")
        submit_sim(store, client="bob")
        store.close()
        reopened = fresh_store(tmp_path)
        assert reopened.counters()["coalesced"] == 1
        assert reopened.job(job_id).coalesced == 1
        reopened.close()

    def test_permanently_failed_job_does_not_absorb(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store)
        store.claim(job_id)
        store.fail(job_id, "ValueError: boom", permanent=True, attempts=1)
        new_id, coalesced = submit_sim(store)
        assert not coalesced and new_id != job_id
        store.close()

    def test_unknown_kind_is_rejected(self, tmp_path):
        store = fresh_store(tmp_path)
        with pytest.raises(ServiceError):
            store.submit(JobRequest(kind="mine-bitcoin", params={}))
        store.close()


class TestQuota:
    def test_quota_bounds_active_jobs_per_client(self, tmp_path):
        store = fresh_store(tmp_path, quota=2)
        submit_sim(store, benchmark="gcc", client="greedy")
        submit_sim(store, benchmark="mcf", client="greedy")
        with pytest.raises(QuotaExceeded):
            submit_sim(store, benchmark="swim", client="greedy")
        # Other clients are unaffected: quotas are per client.
        _, coalesced = submit_sim(store, benchmark="swim", client="polite")
        assert not coalesced
        store.close()

    def test_settled_jobs_release_quota(self, tmp_path):
        store = fresh_store(tmp_path, quota=1)
        job_id, _ = submit_sim(store, benchmark="gcc", client="c")
        store.claim(job_id)
        store.fail(job_id, "ValueError: x", permanent=True, attempts=1)
        _, coalesced = submit_sim(store, benchmark="mcf", client="c")
        assert not coalesced
        store.close()

    def test_duplicate_coalesces_before_quota(self, tmp_path):
        # A dedup'd resubmission adds no work, so it must not be
        # rejected even when the client is at its quota.
        store = fresh_store(tmp_path, quota=1)
        job_id, _ = submit_sim(store, client="c")
        dup_id, coalesced = submit_sim(store, client="c")
        assert coalesced and dup_id == job_id
        store.close()


class TestScheduling:
    def test_runnable_round_robins_across_clients(self, tmp_path):
        store = fresh_store(tmp_path)
        a1, _ = submit_sim(store, benchmark="gcc", client="a")
        a2, _ = submit_sim(store, benchmark="mcf", client="a")
        a3, _ = submit_sim(store, benchmark="swim", client="a")
        b1, _ = submit_sim(store, benchmark="equake", client="b")
        order = [job.job_id for job in store.runnable()]
        # Client b's single job lands in round one, not after all of a's.
        assert order == [a1, b1, a2, a3]
        store.close()

    def test_claim_requires_queued(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store)
        store.claim(job_id)
        assert store.job(job_id).status == RUNNING
        with pytest.raises(ServiceError):
            store.claim(job_id)
        store.close()


class TestResultsAndRecovery:
    def test_complete_publishes_result_before_done(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store)
        store.claim(job_id)
        store.complete(job_id, {"ipc": 1.25}, attempts=1)
        assert store.job(job_id).status == DONE
        assert store.result(job_id) == {"ipc": 1.25}
        # The journal's done record refers to a result that exists.
        events = [r["event"] for r in store.journal.records]
        assert events[-1] == "done"
        store.close()

    def test_recover_requeues_interrupted_jobs(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store)
        store.claim(job_id)
        store.close()  # supervisor "dies" with the job running
        reopened = fresh_store(tmp_path)
        assert reopened.interrupted() == [job_id]
        recovery = reopened.recover()
        assert recovery["interrupted"] == [job_id]
        job = reopened.job(job_id)
        assert job.status == QUEUED and job.recovered == 1
        reopened.close()

    def test_recover_heals_lost_results(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store)
        store.claim(job_id)
        store.complete(job_id, {"ipc": 1.0}, attempts=1)
        # Corrupt the stored payload behind the store's back.
        key = store._result_key(store.job(job_id).key)
        store.results.path_for(key).write_bytes(b"not a pickle")
        assert store.verify_results() == [job_id]
        recovery = store.recover()
        assert recovery["lost_results"] == [job_id]
        assert store.job(job_id).status == QUEUED
        # The corrupt entry went to quarantine, not silently vanished.
        assert store.results.stats()["quarantined"] == 1
        store.close()

    def test_requeue_and_fail_track_attempts(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store)
        store.claim(job_id)
        store.requeue(job_id, "result store write failed: disk full",
                      attempts=1)
        job = store.job(job_id)
        assert job.status == QUEUED and job.attempts == 1
        store.claim(job_id)
        store.fail(job_id, "wall-clock timeout", permanent=False,
                   attempts=2)
        job = store.job(job_id)
        assert job.status == FAILED and job.attempts == 2
        assert not job.permanent
        store.close()

    def test_state_snapshot_round_trips(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store)
        store.write_state()
        snapshot = store.state_snapshot()
        assert snapshot["jobs"][job_id]["status"] == QUEUED
        assert snapshot["counters"]["submitted"] == 1
        store.close()


class TestJournalSafety:
    def test_foreign_journal_kind_is_refused(self, tmp_path):
        root = tmp_path / "store"
        store = JobStore(root)
        store.close()
        journal = root / "journal.jsonl"
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        header["kind"] = "faults-journal"
        journal.write_text(
            "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        )
        with pytest.raises(ServiceError):
            JobStore(root)

    def test_future_format_version_is_refused(self, tmp_path):
        root = tmp_path / "store"
        store = JobStore(root)
        store.close()
        journal = root / "journal.jsonl"
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = header["version"] + 1
        journal.write_text(
            "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        )
        with pytest.raises(ServiceError):
            JobStore(root)

    def test_damaged_middle_line_counts_orphans(self, tmp_path):
        store = fresh_store(tmp_path)
        job_id, _ = submit_sim(store)
        store.claim(job_id)
        store.close()
        journal = tmp_path / "store" / "journal.jsonl"
        lines = journal.read_text().splitlines()
        # Destroy the submit record; the start record becomes an orphan.
        assert json.loads(lines[1])["event"] == "submit"
        lines[1] = '{"event": "subm'
        journal.write_text("\n".join(lines) + "\n")
        reopened = fresh_store(tmp_path)
        counters = reopened.counters()
        assert counters["torn_lines"] == 1
        assert counters["orphaned_events"] == 1
        reopened.close()


class TestTornTailProperty:
    """Truncate the journal at every byte of its final record.

    Property: whatever the cut point, the store reopens without error,
    replays every record before the final one, and the final record is
    either fully applied (the newline made it to disk) or cleanly lost.
    """

    def _journal_with_history(self, tmp_path):
        store = fresh_store(tmp_path)
        j1, _ = submit_sim(store, benchmark="gcc", client="a")
        submit_sim(store, benchmark="gcc", client="b")  # coalesce
        j2, _ = submit_sim(store, benchmark="mcf", client="b")
        store.claim(j1)
        store.complete(j1, {"ipc": 1.5}, attempts=1)
        store.claim(j2)  # final record: j2's start event
        store.close()
        return tmp_path / "store" / "journal.jsonl", j1, j2

    def test_every_truncation_offset_reopens_cleanly(self, tmp_path):
        journal, j1, j2 = self._journal_with_history(tmp_path)
        data = journal.read_bytes()
        final_start = data[:-1].rfind(b"\n") + 1
        assert final_start > 0
        for cut in range(final_start, len(data) + 1):
            journal.write_bytes(data[:cut])
            store = fresh_store(tmp_path)
            counters = store.counters()
            # Everything before the final record always replays.
            assert counters["submitted"] == 2
            assert counters["coalesced"] == 1
            assert counters["completed"] == 1
            assert store.job(j1).status == DONE
            assert store.result(j1) == {"ipc": 1.5}
            # The torn final record either applied fully or not at all.
            # The record's JSON is complete from len(data)-1 on (the
            # trailing newline is not part of the record).
            applied = store.job(j2).status == RUNNING
            assert applied == (cut >= len(data) - 1)
            torn = counters["torn_lines"]
            assert torn == (0 if applied or cut == final_start else 1)
            store.close()

    @pytest.mark.parametrize("offset_fraction", [0.25, 0.5, 0.9])
    def test_truncated_store_resumes_to_full_service(
        self, tmp_path, offset_fraction
    ):
        # A few cut points taken further: the reopened store must not
        # just load — it must carry on as if the crash never happened.
        journal, j1, j2 = self._journal_with_history(tmp_path)
        data = journal.read_bytes()
        final_start = data[:-1].rfind(b"\n") + 1
        cut = final_start + int(
            (len(data) - final_start) * offset_fraction
        )
        journal.write_bytes(data[:cut])
        store = fresh_store(tmp_path)
        recovery = store.recover()
        assert recovery == {"interrupted": [], "lost_results": []}
        store.claim(j2)
        store.complete(j2, {"ipc": 0.9}, attempts=1)
        assert store.result(j2) == {"ipc": 0.9}
        store.close()
        # And the repaired history itself replays.
        final = fresh_store(tmp_path)
        assert final.job(j2).status == DONE
        assert final.counters()["completed"] == 2
        final.close()


class TestJsonlJournalUnit:
    def test_append_then_reload_round_trips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JsonlJournal(path, kind="test", version=1, digest="d")
        journal.append({"event": "one", "n": 1})
        journal.append({"event": "two", "n": 2})
        journal.close()
        reloaded = JsonlJournal(path, kind="test", version=1, digest="d")
        assert [r["event"] for r in reloaded.records] == ["one", "two"]
        assert reloaded.skipped == 0
        reloaded.close()

    def test_readonly_journal_refuses_appends(self, tmp_path):
        path = tmp_path / "j.jsonl"
        JsonlJournal(path, kind="test", version=1).close()
        readonly = JsonlJournal(path, kind="test", version=1,
                                readonly=True)
        with pytest.raises(JournalError):
            readonly.append({"event": "nope"})

    def test_digest_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        JsonlJournal(path, kind="test", version=1, digest="aaa").close()
        with pytest.raises(JournalError):
            JsonlJournal(path, kind="test", version=1, digest="bbb")
