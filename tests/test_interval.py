"""The interval fidelity tier: config parsing, planning, and honesty.

The interval tier trades detail for speed: a handful of calibration
windows are simulated exactly and the GREG-style estimator predicts the
rest analytically.  These tests pin down the contract that makes the
tier usable in sweeps:

* :class:`IntervalConfig` specs round-trip and reject nonsense;
* calibration plans are deterministic and fall back to exact when the
  trace is too short to be worth predicting;
* results are bit-deterministic, carry ``fidelity="interval"``, report
  their measured error bound honestly, and ship a model-derived CPI
  stack that sums exactly to the estimated cycles.
"""

from __future__ import annotations

import math

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.sim.config import braid_config, ooo_config
from repro.sim.interval import (
    IntervalConfig,
    plan_calibration,
    simulate_interval,
)
from repro.sim.run import build_core, simulate


@pytest.fixture(scope="module")
def ctx():
    # scale=8 keeps runtime modest while leaving the traces (~30-40k
    # instructions) long enough that the calibration planner engages
    # instead of falling back to exact.
    return ExperimentContext(
        benchmarks=("gcc", "mcf"),
        scale=8,
        max_instructions=200_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


class TestIntervalConfig:
    def test_spec_round_trips(self):
        config = IntervalConfig(
            windows=9, window=300, warmup=64, seed=3, error_bound_pct=15.0
        )
        assert IntervalConfig.parse(config.spec()) == config

    @pytest.mark.parametrize("text", ("", "1", "on", "default", "TRUE"))
    def test_default_spellings(self, text):
        assert IntervalConfig.parse(text) == IntervalConfig()

    def test_bound_maps_to_error_bound_pct(self):
        assert IntervalConfig.parse("bound=2.5").error_bound_pct == 2.5

    @pytest.mark.parametrize(
        "text", ("windows", "stride=4", "windows=x", "bound=low")
    )
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValueError):
            IntervalConfig.parse(text)

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"windows": 1},
            {"window": 0},
            {"warmup": -1},
            {"seed": -1},
            {"error_bound_pct": 0.0},
        ),
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            IntervalConfig(**kwargs)

    def test_cache_token_distinguishes_configs(self):
        base = IntervalConfig()
        assert base.cache_token() != IntervalConfig(seed=1).cache_token()
        assert base.cache_token() == IntervalConfig().cache_token()


class TestPlanCalibration:
    def test_short_trace_declines(self):
        # 12 default windows over <= 12 units: nothing left to predict.
        config = IntervalConfig()
        assert plan_calibration(config.windows * config.window, config) is None

    def test_plan_is_deterministic(self):
        config = IntervalConfig()
        assert plan_calibration(100_000, config) == (
            plan_calibration(100_000, config)
        )

    def test_plan_anchors_first_and_last_units(self):
        config = IntervalConfig()
        units, chosen = plan_calibration(100_000, config)
        assert chosen[0] == 0
        assert chosen[-1] == len(units) - 1
        assert units[0][0] == 0
        assert units[-1][1] == 100_000
        # Lattice covers the trace contiguously.
        for (_, end), (start, _) in zip(units, units[1:]):
            assert end == start

    def test_seed_moves_interior_picks_only(self):
        total = 200_000
        _, base = plan_calibration(total, IntervalConfig(seed=0))
        _, moved = plan_calibration(total, IntervalConfig(seed=7))
        assert base[0] == moved[0] == 0
        assert base[-1] == moved[-1]
        assert base != moved  # interior scatter responds to the seed


class TestSimulateInterval:
    def test_deterministic(self, ctx):
        workload = ctx.workload("gcc")
        first = simulate_interval(workload, ooo_config())
        second = simulate_interval(workload, ooo_config())
        assert first.cycles == second.cycles
        assert first.extra == second.extra

    def test_result_shape(self, ctx):
        workload = ctx.workload("gcc")
        result = simulate_interval(workload, ooo_config())
        assert result.fidelity == "interval"
        assert result.sampled
        assert result.instructions == len(workload.trace)
        assert result.extra["interval_error_bound_pct"] > 0
        assert 0.0 < result.extra["sample_detail_fraction"] < 1.0

    def test_short_trace_falls_back_to_exact(self, ctx):
        small = ExperimentContext(
            benchmarks=("gcc",),
            max_instructions=2_000,
            jobs=1,
            cache=ArtifactCache(enabled=False),
        )
        workload = small.workload("gcc")
        result = simulate_interval(workload, ooo_config())
        assert result.extra.get("interval_fallback_exact") == 1.0
        exact = build_core(workload, ooo_config()).run()
        assert result.cycles == exact.cycles

    @pytest.mark.parametrize(
        "name, factory, braided",
        [("gcc", ooo_config, False), ("mcf", braid_config, True)],
    )
    def test_error_within_stated_bound(self, ctx, name, factory, braided):
        """The honesty contract: actual IPC error <= the stated bound."""
        workload = ctx.workload(name, braided=braided)
        exact = build_core(workload, factory()).run()
        result = simulate_interval(workload, factory())
        error_pct = 100.0 * abs(result.cycles - exact.cycles) / exact.cycles
        assert error_pct <= result.extra["interval_error_bound_pct"], (
            f"{name}: {error_pct:.2f}% error exceeds stated "
            f"{result.extra['interval_error_bound_pct']:.2f}% bound"
        )

    def test_model_cpi_stack_sums_to_cycles(self, ctx):
        workload = ctx.workload("gcc")
        result = simulate_interval(workload, ooo_config())
        assert result.cpi_stack, "interval run should ship a model CPI stack"
        assert all(value >= 0.0 for value in result.cpi_stack.values())
        assert math.isclose(
            sum(result.cpi_stack.values()), result.cycles, rel_tol=1e-9
        )

    def test_simulate_dispatches_interval(self, ctx):
        workload = ctx.workload("gcc")
        direct = simulate_interval(workload, ooo_config())
        routed = simulate(workload, ooo_config(), fidelity="interval")
        assert routed.fidelity == "interval"
        assert routed.cycles == direct.cycles

    def test_simulate_rejects_unknown_fidelity(self, ctx):
        workload = ctx.workload("gcc")
        with pytest.raises(ValueError, match="unknown fidelity"):
            simulate(workload, ooo_config(), fidelity="approximate")

    def test_fidelity_labels(self, ctx):
        workload = ctx.workload("gcc")
        assert simulate(workload, ooo_config()).fidelity == "exact"
        assert (
            simulate(workload, ooo_config(), fidelity="sampled").fidelity
            == "sampled"
        )
