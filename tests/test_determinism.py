"""Determinism of the sweep engine: parallel and cached runs are bit-identical.

The parallel sweep engine and the persistent artifact cache are pure
plumbing — they must never change a single cycle or stall counter.  These
tests pin that down for every registered timing-core kind over the quick
suite:

* ``run_many`` with a worker pool reproduces the serial results exactly;
* workloads rehydrated from the disk cache simulate identically to freshly
  prepared ones.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.harness.sweep import SweepPoint
from repro.sim.registry import core_registry

QUICK = ("gcc", "mcf", "swim", "equake")

# every registered paradigm — a new core inherits these guards for free
CORES = {
    key: (descriptor.config_factory(8), descriptor.braided)
    for key, descriptor in core_registry().items()
}


def fingerprint(result):
    """Every architectural counter a run produces."""
    return (
        result.cycles,
        result.instructions,
        result.issued,
        dataclasses.asdict(result.stalls),
        sorted(result.extra.items()),
    )


def fresh_context(jobs: int = 1, cache: ArtifactCache = None) -> ExperimentContext:
    return ExperimentContext(
        benchmarks=QUICK,
        jobs=jobs,
        cache=cache if cache is not None else ArtifactCache(enabled=False),
    )


def all_points():
    return [
        SweepPoint(name, config, braided=braided)
        for _, (config, braided) in CORES.items()
        for name in QUICK
    ]


@pytest.fixture(scope="module")
def serial_fingerprints():
    """Ground truth: every (core kind, benchmark) simulated in-process."""
    ctx = fresh_context()
    return {
        (kind, name): fingerprint(ctx.run(name, config, braided=braided))
        for kind, (config, braided) in CORES.items()
        for name in QUICK
    }


@pytest.fixture(scope="module")
def parallel_results():
    """The same sweep dispatched through the jobs=2 worker pool.

    Calls :func:`run_points_parallel` directly: ``run_many`` would route
    around the pool on single-CPU hosts (see ``effective_jobs``), and this
    test exists precisely to exercise the pool path.
    """
    from repro.harness.parallel import run_points_parallel

    ctx = fresh_context(jobs=2)
    points = all_points()
    return dict(zip(points, run_points_parallel(ctx, points, 2)))


@pytest.fixture(scope="module")
def cached_fingerprints(tmp_path_factory):
    """The same sweep with every workload rehydrated from the disk cache."""
    root = tmp_path_factory.mktemp("repro-artifact-cache")
    warm = fresh_context(cache=ArtifactCache(root=root))
    for name in QUICK:
        for braided in (False, True):
            warm.workload(name, braided=braided)
    cold = fresh_context(cache=ArtifactCache(root=root))
    fingerprints = {
        (kind, name): fingerprint(cold.run(name, config, braided=braided))
        for kind, (config, braided) in CORES.items()
        for name in QUICK
    }
    assert cold.cache.hits > 0 and cold.cache.misses == 0, (
        "cached context should have loaded every workload from disk"
    )
    return fingerprints


@pytest.mark.parametrize("kind", list(CORES))
def test_parallel_matches_serial(kind, serial_fingerprints, parallel_results):
    config, braided = CORES[kind]
    for name in QUICK:
        point = SweepPoint(name, config, braided=braided)
        assert fingerprint(parallel_results[point]) == (
            serial_fingerprints[(kind, name)]
        ), f"parallel run diverged on {name}/{kind}"


@pytest.mark.parametrize("kind", list(CORES))
def test_cached_matches_fresh(kind, serial_fingerprints, cached_fingerprints):
    for name in QUICK:
        assert cached_fingerprints[(kind, name)] == (
            serial_fingerprints[(kind, name)]
        ), f"cached workload diverged on {name}/{kind}"


def test_run_many_memoizes(serial_fingerprints):
    """A repeated point is simulated once and served from the memo after."""
    ctx = fresh_context()
    points = all_points()
    first = ctx.run_many(points)
    again = ctx.run_many(points)
    for point in points:
        assert first[point] is again[point]


def test_run_many_counts_deduped_points():
    """Intra-batch duplicates are collapsed and counted in telemetry."""
    ctx = fresh_context()
    config, braided = CORES["inorder"]
    point = SweepPoint("swim", config, braided=braided)
    results = ctx.run_many([point, point, point])
    assert results[point].instructions > 0
    assert ctx.telemetry.counters.get("run_many.deduped") == 2
    ctx.run_many([point])
    assert ctx.telemetry.counters.get("run_many.memoized") == 1


class TestEventKernelEquivalence:
    """The skip-to-next-event scheduler is a pure speed layer.

    ``TimingCore.event_kernel`` switches between the classic every-cycle
    tick loop and the next-event skip loop.  The two must be bit-identical
    on every core kind — plain runs, hooked (observer-attached) runs, and
    the resumable drain / fast-forward / re-run windows the sampled and
    interval engines compose.
    """

    MAX_CYCLES = 1_000_000

    @pytest.fixture(scope="class")
    def small_ctx(self):
        return ExperimentContext(
            benchmarks=("gcc", "mcf"),
            max_instructions=20_000,
            jobs=1,
            cache=ArtifactCache(enabled=False),
        )

    @staticmethod
    def _ticked(monkeypatch):
        from repro.sim.core import TimingCore

        monkeypatch.setattr(TimingCore, "event_kernel", False)

    @pytest.mark.parametrize("kind", list(CORES))
    @pytest.mark.parametrize("name", ("gcc", "mcf"))
    def test_plain_run_matches_ticked(self, kind, name, small_ctx, monkeypatch):
        from repro.sim.run import build_core

        config, braided = CORES[kind]
        workload = small_ctx.workload(name, braided=braided)
        fast = fingerprint(build_core(workload, config).run())
        with monkeypatch.context() as patched:
            self._ticked(patched)
            slow = fingerprint(build_core(workload, config).run())
        assert fast == slow, f"event kernel diverged on {name}/{kind}"

    @pytest.mark.parametrize("kind", list(CORES))
    def test_hooked_run_matches_ticked(self, kind, small_ctx, monkeypatch):
        """With hooks attached both modes single-step — and still agree."""
        from repro.obs.observer import Observer
        from repro.sim.run import build_core

        config, braided = CORES[kind]
        workload = small_ctx.workload("mcf", braided=braided)

        def hooked_run():
            core = build_core(workload, config)
            observer = Observer(cpi=True)
            observer.attach(core)
            result = core.run()
            observer.finalize(result)
            return fingerprint(result), result.cpi_stack

        fast = hooked_run()
        with monkeypatch.context() as patched:
            self._ticked(patched)
            slow = hooked_run()
        assert fast == slow, f"hooked event kernel diverged on {kind}"

    @pytest.mark.parametrize("kind", list(CORES))
    def test_resume_windows_match_ticked(self, kind, small_ctx, monkeypatch):
        """Drain / fast-forward / re-run windows agree across kernels."""
        from repro.sim.run import build_core

        config, braided = CORES[kind]
        workload = small_ctx.workload("gcc", braided=braided)
        total = len(workload.trace)
        mid = total // 2

        def windowed_run():
            core = build_core(workload, config)
            core._fetch_limit = 200
            cycle = core._run_until(200, 0, self.MAX_CYCLES)
            cycle = core.drain_in_flight(cycle)
            core.fast_forward(mid, cycle)
            origin = core._retired_count - mid
            core._fetch_limit = total
            cycle = core._run_until(
                origin + min(total, mid + 400), cycle, self.MAX_CYCLES
            )
            cycle = core.drain_in_flight(cycle)
            return (
                cycle,
                core._retired_count - origin,
                dataclasses.asdict(core.stalls),
            )

        fast = windowed_run()
        with monkeypatch.context() as patched:
            self._ticked(patched)
            slow = windowed_run()
        assert fast == slow, f"windowed event kernel diverged on {kind}"
