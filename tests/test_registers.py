"""Unit tests for the register model."""

import pytest

from repro.isa.registers import (
    FZERO,
    NUM_FP_REGS,
    NUM_INT_REGS,
    ZERO,
    RegClass,
    Register,
    Space,
    all_registers,
    fp_reg,
    int_reg,
    parse_register,
)


class TestInterning:
    def test_same_register_is_identical(self):
        assert int_reg(5) is int_reg(5)
        assert fp_reg(7) is fp_reg(7)

    def test_different_banks_differ(self):
        assert int_reg(5) is not fp_reg(5)
        assert int_reg(5) != fp_reg(5)

    def test_equality_and_hash(self):
        assert int_reg(3) == Register(RegClass.INT, 3)
        assert hash(int_reg(3)) == hash(Register(RegClass.INT, 3))
        assert len({int_reg(1), int_reg(1), fp_reg(1)}) == 2


class TestZeroRegisters:
    def test_int_zero(self):
        assert ZERO.is_zero
        assert ZERO is int_reg(31)

    def test_fp_zero(self):
        assert FZERO.is_zero
        assert FZERO is fp_reg(31)

    def test_ordinary_registers_are_not_zero(self):
        assert not int_reg(0).is_zero
        assert not fp_reg(30).is_zero


class TestBounds:
    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            int_reg(NUM_INT_REGS)

    def test_out_of_range_fp(self):
        with pytest.raises(ValueError):
            fp_reg(NUM_FP_REGS)

    def test_negative_index(self):
        with pytest.raises(ValueError):
            int_reg(-1)


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("r0", int_reg(0)),
            ("R12", int_reg(12)),
            ("f31", fp_reg(31)),
            ("zero", ZERO),
            ("fzero", FZERO),
            (" r7 ", int_reg(7)),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_register(text) is expected

    @pytest.mark.parametrize("text", ["x1", "r", "rA", "32", "", "g5"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_register(text)


class TestEnumeration:
    def test_all_registers_count(self):
        regs = all_registers()
        assert len(regs) == NUM_INT_REGS + NUM_FP_REGS
        assert len(set(regs)) == len(regs)

    def test_names_round_trip(self):
        for reg in all_registers():
            assert parse_register(reg.name) is reg

    def test_sorting_is_deterministic(self):
        regs = sorted(all_registers())
        assert regs[0].rclass is RegClass.FP  # "fp" < "int" lexically
        assert regs[0].index == 0


class TestSpace:
    def test_space_values(self):
        assert Space.EXTERNAL.value == "ext"
        assert Space.INTERNAL.value == "int"

    def test_is_fp(self):
        assert fp_reg(2).is_fp
        assert not int_reg(2).is_fp
