"""Unit tests for static memory disambiguation."""

from repro.dataflow.memdep import (
    MemoryEdge,
    memory_order_edges,
    ordering_violated,
    provably_independent,
)
from repro.isa import assemble


def block_of(source: str):
    return assemble(source).blocks[0]


class TestIndependence:
    def test_same_base_different_words(self):
        block = block_of(
            """
            stq r1, 0(r2)
            ldq r3, 8(r2)
            """
        )
        assert provably_independent(block, 0, 1)

    def test_same_base_same_word(self):
        block = block_of(
            """
            stq r1, 0(r2)
            ldq r3, 0(r2)
            """
        )
        assert not provably_independent(block, 0, 1)

    def test_sub_word_displacements_conflict(self):
        block = block_of(
            """
            stq r1, 0(r2)
            ldq r3, 4(r2)
            """
        )
        # 0 and 4 fall in the same 8-byte word.
        assert not provably_independent(block, 0, 1)

    def test_different_bases_unknown(self):
        block = block_of(
            """
            stq r1, 0(r2)
            ldq r3, 8(r4)
            """
        )
        assert not provably_independent(block, 0, 1)

    def test_base_redefinition_blocks_proof(self):
        block = block_of(
            """
            stq r1, 0(r2)
            addq r2, r1, r2
            ldq r3, 8(r2)
            """
        )
        assert not provably_independent(block, 0, 2)


class TestEdges:
    def test_load_load_never_ordered(self):
        block = block_of(
            """
            ldq r1, 0(r2)
            ldq r3, 0(r2)
            """
        )
        assert memory_order_edges(block) == []

    def test_store_load_conflict_creates_edge(self):
        block = block_of(
            """
            stq r1, 0(r2)
            ldq r3, 0(r4)
            """
        )
        assert memory_order_edges(block) == [MemoryEdge(0, 1)]

    def test_store_store_same_word(self):
        block = block_of(
            """
            stq r1, 0(r2)
            stq r3, 0(r2)
            """
        )
        assert memory_order_edges(block) == [MemoryEdge(0, 1)]

    def test_disambiguated_pairs_create_no_edges(self):
        block = block_of(
            """
            stq r1, 0(r2)
            stq r3, 8(r2)
            ldq r4, 16(r2)
            """
        )
        assert memory_order_edges(block) == []

    def test_non_memory_instructions_ignored(self):
        block = block_of(
            """
            addq r1, r2, r3
            stq r3, 0(r2)
            addq r3, r3, r4
            """
        )
        assert memory_order_edges(block) == []


class TestViolations:
    def test_preserved_order_has_no_violations(self):
        edges = [MemoryEdge(0, 2), MemoryEdge(1, 2)]
        assert ordering_violated(edges, [0, 1, 2]) == set()

    def test_swap_detected(self):
        edges = [MemoryEdge(0, 1)]
        assert ordering_violated(edges, [1, 0]) == {(0, 1)}

    def test_partial_reorder(self):
        edges = [MemoryEdge(0, 2)]
        # instruction 1 moved first; 0 still before 2 -> fine
        assert ordering_violated(edges, [1, 0, 2]) == set()
