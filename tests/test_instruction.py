"""Unit tests for the instruction model and braid annotations."""

import pytest

from repro.isa.instruction import PLAIN, BraidAnnotation, Instruction
from repro.isa.opcodes import opcode_by_name
from repro.isa.registers import ZERO, Space, fp_reg, int_reg


def make(name, **kwargs):
    return Instruction(opcode=opcode_by_name(name), **kwargs)


class TestConstruction:
    def test_simple_alu(self):
        inst = make("addq", dest=int_reg(3), srcs=(int_reg(1), int_reg(2)))
        assert inst.dest is int_reg(3)
        assert not inst.is_mem and not inst.is_branch

    def test_wrong_source_count(self):
        with pytest.raises(ValueError):
            make("addq", dest=int_reg(3), srcs=(int_reg(1),))

    def test_missing_destination(self):
        with pytest.raises(ValueError):
            make("addq", srcs=(int_reg(1), int_reg(2)))

    def test_unexpected_destination(self):
        with pytest.raises(ValueError):
            make("stq", dest=int_reg(1), srcs=(int_reg(1), int_reg(2)))

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            make("bne", srcs=(int_reg(1),))

    def test_nop(self):
        inst = make("nop")
        assert inst.is_nop
        assert inst.reads() == ()
        assert inst.writes() is None


class TestReadsWrites:
    def test_zero_register_reads_are_dropped(self):
        inst = make("addq", dest=int_reg(1), srcs=(ZERO, int_reg(2)))
        assert inst.reads() == (int_reg(2),)

    def test_zero_register_writes_are_dropped(self):
        inst = make("addq", dest=ZERO, srcs=(int_reg(1), int_reg(2)))
        assert inst.writes() is None

    def test_store_reads_both(self):
        inst = make("stq", srcs=(int_reg(1), int_reg(2)), imm=8)
        assert set(inst.reads()) == {int_reg(1), int_reg(2)}
        assert inst.base_reg is int_reg(2)

    def test_load_base(self):
        inst = make("ldq", dest=int_reg(1), srcs=(int_reg(2),), imm=16)
        assert inst.base_reg is int_reg(2)

    def test_base_reg_rejects_non_memory(self):
        inst = make("addq", dest=int_reg(1), srcs=(int_reg(1), int_reg(2)))
        with pytest.raises(ValueError):
            _ = inst.base_reg


class TestAnnotation:
    def test_plain_defaults(self):
        assert not PLAIN.start
        assert PLAIN.dest_external
        assert not PLAIN.dest_internal
        assert PLAIN.src_space(0) is Space.EXTERNAL
        assert PLAIN.src_space(5) is Space.EXTERNAL

    def test_with_annotation_copies(self):
        inst = make("addq", dest=int_reg(1), srcs=(int_reg(2), int_reg(3)))
        annot = BraidAnnotation(
            braid_id=2,
            start=True,
            src_spaces=(Space.INTERNAL, Space.EXTERNAL),
            dest_internal=True,
            dest_external=False,
        )
        copy = inst.with_annotation(annot)
        assert copy is not inst
        assert copy.annot.start
        assert copy.annot.src_space(0) is Space.INTERNAL
        assert copy.annot.src_space(1) is Space.EXTERNAL
        assert inst.annot is PLAIN  # original untouched

    def test_with_operands(self):
        inst = make("addq", dest=int_reg(1), srcs=(int_reg(2), int_reg(3)))
        rewritten = inst.with_operands(dest=int_reg(9))
        assert rewritten.dest is int_reg(9)
        assert rewritten.srcs == inst.srcs

    def test_retargeted(self):
        inst = make("bne", srcs=(int_reg(1),), target=3)
        assert inst.retargeted(7).target == 7
        alu = make("addq", dest=int_reg(1), srcs=(int_reg(2), int_reg(3)))
        with pytest.raises(ValueError):
            alu.retargeted(1)


class TestRendering:
    def test_load_render(self):
        inst = make("ldl", dest=int_reg(3), srcs=(int_reg(8),), imm=4)
        assert inst.render() == "ldl r3, 4(r8)"

    def test_store_render(self):
        inst = make("stl", srcs=(int_reg(3), int_reg(8)), imm=4)
        assert inst.render() == "stl r3, 4(r8)"

    def test_branch_render(self):
        inst = make("bne", srcs=(int_reg(1),), target=2)
        assert "B2" in inst.render()

    def test_annotated_render_marks_start(self):
        inst = make("addq", dest=int_reg(1), srcs=(int_reg(2), int_reg(3)))
        annotated = inst.with_annotation(BraidAnnotation(braid_id=0, start=True))
        assert ";S" in annotated.render()

    def test_fp_render(self):
        inst = make("addt", dest=fp_reg(1), srcs=(fp_reg(2), fp_reg(3)))
        assert "f1" in inst.render()


class TestIdentity:
    def test_instructions_compare_by_identity(self):
        a = make("addq", dest=int_reg(1), srcs=(int_reg(2), int_reg(3)))
        b = make("addq", dest=int_reg(1), srcs=(int_reg(2), int_reg(3)))
        assert a != b
        assert a == a
        assert len({id(a), id(b)}) == 2
