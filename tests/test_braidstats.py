"""Tests for braid statistics (paper Tables 1-3)."""

import pytest

from repro.analysis.braidstats import (
    BraidRecord,
    SuiteBraidStats,
    braid_statistics,
)
from repro.core import braidify
from repro.isa import assemble


class TestOnPaperKernel:
    def test_block_count(self, gcc_life, gcc_life_compiled):
        stats = braid_statistics(gcc_life_compiled, suite="int")
        assert stats.basic_blocks == len(gcc_life.blocks)

    def test_braid_sizes_positive(self, gcc_life_compiled):
        stats = braid_statistics(gcc_life_compiled, suite="int")
        assert all(record.size >= 1 for record in stats.records)

    def test_singles_identified(self, gcc_life_compiled):
        stats = braid_statistics(gcc_life_compiled, suite="int")
        singles = [r for r in stats.records if r.is_single]
        assert singles
        assert stats.braids_per_block() > stats.braids_per_block(
            exclude_singles=True
        )

    def test_widths_at_least_one(self, gcc_life_compiled):
        stats = braid_statistics(gcc_life_compiled, suite="int")
        for record in stats.records:
            assert record.width >= 1.0

    def test_branch_braids_flagged(self, gcc_life_compiled):
        stats = braid_statistics(gcc_life_compiled, suite="int")
        assert any(record.is_branch for record in stats.records)


class TestIOCounts:
    def test_known_block(self):
        program = assemble(
            """
            .block A
                addq r1, r2, r3    ; ext inputs r1, r2
                addq r3, r3, r4    ; internal r3
                stq r4, 0(r5)      ; ext input r5; r4 internal
            .block B
                nop
            """
        )
        compilation = braidify(program)
        stats = braid_statistics(compilation, suite="int")
        big = max(stats.records, key=lambda r: r.size)
        assert big.size == 3
        assert big.internals == 2  # r3 and r4 both die inside the braid
        assert big.external_inputs == 3  # r1, r2, r5
        assert big.external_outputs == 0

    def test_escaping_value_counts_as_output(self):
        program = assemble(
            """
            .block A
                addq r1, r2, r3
            .block B
                stq r3, 0(r1)
            """
        )
        compilation = braidify(program)
        stats = braid_statistics(compilation, suite="int")
        producer = max(stats.records, key=lambda r: r.external_outputs)
        assert producer.external_outputs == 1


class TestSuiteAggregation:
    def test_average_over_suites(self, gcc_life_compiled):
        suite = SuiteBraidStats()
        suite.rows["k1"] = braid_statistics(gcc_life_compiled, suite="int")
        suite.rows["k2"] = braid_statistics(gcc_life_compiled, suite="fp")
        overall = suite.average("braids_per_block")
        int_only = suite.average("braids_per_block", suite="int")
        assert overall == pytest.approx(int_only)
        assert suite.average("mean_size", suite="nope") == 0.0

    def test_single_fraction_bounds(self, gcc_life_compiled):
        stats = braid_statistics(gcc_life_compiled, suite="int")
        assert 0.0 <= stats.single_fraction <= 1.0
        assert 0.0 <= stats.single_branch_nop_fraction <= 1.0

    def test_record_is_single(self):
        assert BraidRecord(0, 1, 1.0, 0, 0, 0).is_single
        assert not BraidRecord(0, 2, 1.0, 0, 0, 0).is_single
