"""Integration tests: memory system behaviour as seen through workloads."""

import pytest

from repro.sim.workload import prepare_workload
from repro.uarch.cache import MemoryHierarchyConfig
from repro.workloads import build_program, kernel


class TestWorkingSetEffects:
    def test_mcf_working_set_spills_past_l1(self):
        workload = prepare_workload(build_program("mcf"))
        latencies = set(workload.load_latency.values())
        # L1 hits (3), L2 hits (9), and memory round trips (409) all occur.
        assert 3 in latencies
        assert any(latency > 3 for latency in latencies)

    def test_small_kernel_is_l1_resident_after_warmup(self):
        workload = prepare_workload(kernel("checksum"))
        latencies = list(workload.load_latency.values())
        hits = sum(1 for latency in latencies if latency == 3)
        assert hits / len(latencies) > 0.5

    def test_latency_values_match_hierarchy_levels(self):
        workload = prepare_workload(build_program("equake"))
        allowed = {3, 3 + 6, 3 + 6 + 400}
        assert set(workload.load_latency.values()) <= allowed


class TestCustomHierarchies:
    def test_tiny_l1_raises_miss_rate(self):
        # The generator's access window is ~256 bytes around the induction
        # index, so a 256-byte direct-mapped L1 thrashes while the default
        # 64 KB L1 captures the reuse.
        big = prepare_workload(build_program("gzip"))
        small = prepare_workload(
            build_program("gzip"),
            memory=MemoryHierarchyConfig(l1d_size=256, l1d_assoc=1),
        )
        assert small.stats.l1d_miss_rate > big.stats.l1d_miss_rate

    def test_slow_memory_increases_latencies(self):
        near = prepare_workload(
            build_program("mcf"),
            memory=MemoryHierarchyConfig(memory_latency=100),
        )
        far = prepare_workload(
            build_program("mcf"),
            memory=MemoryHierarchyConfig(memory_latency=800),
        )
        assert max(far.load_latency.values()) > max(near.load_latency.values())

    def test_memory_latency_propagates_to_ipc(self):
        from repro.sim import ooo_config, simulate

        near = prepare_workload(
            build_program("mcf"),
            memory=MemoryHierarchyConfig(memory_latency=50),
        )
        far = prepare_workload(
            build_program("mcf"),
            memory=MemoryHierarchyConfig(memory_latency=800),
        )
        fast = simulate(near, ooo_config(8))
        slow = simulate(far, ooo_config(8))
        assert fast.ipc > slow.ipc
