"""Unit tests for ordering constraints and braid-breaking rules."""

from repro.core.braid import internal_pressure
from repro.core.constraints import (
    enforce_internal_pressure,
    first_pressure_exceed,
    instruction_order_constraints,
    predecessor_map,
)
from repro.core.partition import partition_block
from repro.dataflow.graph import BlockGraph
from repro.dataflow.liveness import LivenessAnalysis
from repro.isa import assemble


def constraints_of(source: str):
    block = assemble(source).blocks[0]
    return set(instruction_order_constraints(block))


class TestRegisterConstraints:
    def test_raw(self):
        edges = constraints_of(
            """
            addq r1, r2, r3
            addq r3, r1, r4
            """
        )
        assert (0, 1) in edges

    def test_war(self):
        edges = constraints_of(
            """
            addq r3, r2, r4
            addq r1, r1, r3
            """
        )
        assert (0, 1) in edges  # read of r3 must stay before the write

    def test_waw(self):
        edges = constraints_of(
            """
            addq r1, r2, r3
            addq r4, r5, r3
            """
        )
        assert (0, 1) in edges

    def test_self_increment_has_no_self_loop(self):
        edges = constraints_of("addqi r5, #1, r5")
        assert all(a != b for a, b in edges)

    def test_independent_instructions_unconstrained(self):
        edges = constraints_of(
            """
            addq r1, r2, r3
            addq r4, r5, r6
            """
        )
        assert edges == set()

    def test_all_edges_point_forward(self, gcc_life):
        for block in gcc_life.blocks:
            for earlier, later in instruction_order_constraints(block):
                assert earlier < later

    def test_memory_edges_included(self):
        edges = constraints_of(
            """
            stq r1, 0(r2)
            ldq r3, 0(r4)
            """
        )
        assert (0, 1) in edges

    def test_predecessor_map(self):
        preds = predecessor_map(3, [(0, 2), (1, 2)])
        assert preds[2] == {0, 1}
        assert preds[0] == set()


class TestInternalPressure:
    def _wide_block(self, live: int) -> str:
        """A block producing ``live`` simultaneously-live internal values."""
        defs = "\n".join(
            f"addq r1, r2, r{3 + i}" for i in range(live)
        )
        # Join all produced values pairwise into one consumer chain so the
        # braid is connected and every def is consumed late.
        chain = []
        prev = "r3"
        for i in range(1, live):
            chain.append(f"addq {prev}, r{3 + i}, r30")
            prev = "r30"
        chain.append("stq r30, 0(r1)")
        return defs + "\n" + "\n".join(chain)

    def pressure_of(self, source: str) -> int:
        program = assemble(source)
        block = program.blocks[0]
        graph = BlockGraph(block)
        liveness = LivenessAnalysis(program)
        escaping = set(liveness.escaping_defs(block))
        braids = partition_block(graph)
        big = max(braids, key=lambda b: b.size)
        return internal_pressure(big, graph, escaping)

    def test_chain_has_unit_pressure(self):
        assert self.pressure_of(
            """
            addq r1, r2, r3
            addq r3, r3, r4
            addq r4, r4, r5
            stq r5, 0(r1)
            """
        ) == 1

    def test_parallel_defs_raise_pressure(self):
        assert self.pressure_of(self._wide_block(6)) == 6

    def test_first_exceed_detects_boundary(self):
        program = assemble(self._wide_block(10))
        block = program.blocks[0]
        graph = BlockGraph(block)
        liveness = LivenessAnalysis(program)
        escaping = set(liveness.escaping_defs(block))
        braids = partition_block(graph)
        big = max(braids, key=lambda b: b.size)
        index = first_pressure_exceed(big, graph, escaping, limit=8)
        assert index == 8  # the ninth simultaneously-live def crosses

    def test_enforce_splits_over_limit(self):
        program = assemble(self._wide_block(10))
        block = program.blocks[0]
        graph = BlockGraph(block)
        liveness = LivenessAnalysis(program)
        escaping = set(liveness.escaping_defs(block))
        braids = partition_block(graph)
        split, stats = enforce_internal_pressure(braids, graph, escaping, limit=8)
        assert stats.pressure_splits >= 1
        for braid in split:
            assert internal_pressure(braid, graph, escaping, ) <= 8

    def test_enforce_keeps_low_pressure_braids(self, gcc_life):
        liveness = LivenessAnalysis(gcc_life)
        for block in gcc_life.blocks:
            graph = BlockGraph(block)
            escaping = set(liveness.escaping_defs(block))
            braids = partition_block(graph)
            split, stats = enforce_internal_pressure(braids, graph, escaping)
            assert stats.pressure_splits == 0
            assert len(split) == len(braids)

    def test_split_preserves_order_and_coverage(self):
        program = assemble(self._wide_block(12))
        block = program.blocks[0]
        graph = BlockGraph(block)
        liveness = LivenessAnalysis(program)
        escaping = set(liveness.escaping_defs(block))
        braids = partition_block(graph)
        split, _ = enforce_internal_pressure(braids, graph, escaping, limit=4)
        covered = sorted(p for b in split for p in b.positions)
        assert covered == sorted(p for b in braids for p in b.positions)
