"""Tests for the experiment harness (context, experiments, reporting)."""

import pytest

from repro.harness import (
    ALL_EXPERIMENTS,
    ArtifactCache,
    ExperimentContext,
    benchmarks_from_env,
    jobs_from_env,
    scale_from_env,
)
from repro.harness.experiments import (
    fig11_braid_window,
    fig14_equal_fus,
    tab1_braids_per_block,
)
from repro.harness.reporting import ExperimentResult, normalize_rows
from repro.workloads import ALL_BENCHMARKS, QUICK_BENCHMARKS


class TestContext:
    def test_program_cached(self, quick_context):
        assert quick_context.program("gcc") is quick_context.program("gcc")

    def test_compilation_cached_per_limit(self, quick_context):
        a = quick_context.compilation("gcc")
        b = quick_context.compilation("gcc", internal_limit=8)
        c = quick_context.compilation("gcc", internal_limit=4)
        assert a is b and a is not c

    def test_workload_variants_distinct(self, quick_context):
        plain = quick_context.workload("gcc")
        braided = quick_context.workload("gcc", braided=True)
        perfect = quick_context.workload("gcc", perfect=True)
        assert plain is not braided and plain is not perfect
        assert perfect.mispredicted == set()

    def test_run_produces_result(self, quick_context):
        from repro.sim import ooo_config

        result = quick_context.run("gcc", ooo_config(8))
        assert result.benchmark == "gcc"
        assert result.ipc > 0

    def test_suite_of(self, quick_context):
        assert quick_context.suite_of("gcc") == "int"
        assert quick_context.suite_of("swim") == "fp"


class TestEnvSelection:
    def test_default_full(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCHMARKS", raising=False)
        assert benchmarks_from_env() == ALL_BENCHMARKS

    def test_quick(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "quick")
        assert benchmarks_from_env() == QUICK_BENCHMARKS

    def test_explicit_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc, swim")
        assert benchmarks_from_env() == ("gcc", "swim")

    def test_unknown_name_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc, quake3")
        with pytest.raises(ValueError):
            benchmarks_from_env()

    def test_suite_selectors(self, monkeypatch):
        from repro.workloads.profiles import FP_BENCHMARKS, INT_BENCHMARKS

        monkeypatch.setenv("REPRO_BENCHMARKS", "int")
        assert benchmarks_from_env() == INT_BENCHMARKS
        monkeypatch.setenv("REPRO_BENCHMARKS", "fp")
        assert benchmarks_from_env() == FP_BENCHMARKS

    def test_scale_default_and_explicit(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_from_env() == 2.5

    def test_scale_malformed_names_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "two")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            scale_from_env()

    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert jobs_from_env() == 3
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert jobs_from_env(default=2) == 2
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            jobs_from_env()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            jobs_from_env()


class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        key = cache.compilation_key("gcc", 1.0, 8)
        assert cache.get(key) is None
        cache.put(key, {"payload": 42})
        assert cache.get(key) == {"payload": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_evicted(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        key = cache.workload_key("gcc", 1.0, False, False, 8, "perceptron", 100)
        cache.put(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_truncated_pickle_warns_and_is_counted(self, tmp_path, capsys):
        cache = ArtifactCache(root=tmp_path)
        key = cache.workload_key("gcc", 1.0, False, False, 8, "perceptron", 100)
        cache.put(key, list(range(1000)))
        path = cache.path_for(key)
        # A crashed writer's torso: valid pickle prefix, missing tail.
        path.write_bytes(path.read_bytes()[:20])
        assert cache.get(key) is None
        assert not path.exists()
        assert cache.corruptions == 1
        assert cache.stats()["corruptions"] == 1
        warning = capsys.readouterr().err
        assert "warning" in warning and path.name in warning
        # The slot heals: the next put/get round-trips cleanly.
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"
        assert cache.corruptions == 1

    def test_plain_miss_is_not_a_corruption(self, tmp_path, capsys):
        cache = ArtifactCache(root=tmp_path)
        assert cache.get(cache.compilation_key("gcc", 1.0, 8)) is None
        assert cache.corruptions == 0
        assert capsys.readouterr().err == ""

    def test_disabled_cache_is_inert(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=False)
        key = cache.compilation_key("gcc", 1.0, 8)
        cache.put(key, "value")
        assert cache.get(key) is None
        assert list(tmp_path.iterdir()) == []

    def test_keys_embed_format_version(self):
        from repro.harness import CACHE_FORMAT_VERSION

        key = ArtifactCache.compilation_key("gcc", 1.0, 8)
        assert CACHE_FORMAT_VERSION in key

    def test_orphaned_tmp_files_swept_on_open(self, tmp_path):
        import os

        from repro.harness.artifacts import _ORPHAN_TMP_AGE_SECONDS

        stale = tmp_path / "dead-writer.pkl.tmp"
        stale.write_bytes(b"torso")
        old = stale.stat().st_mtime - _ORPHAN_TMP_AGE_SECONDS - 60
        os.utime(stale, (old, old))
        fresh = tmp_path / "live-writer.pkl.tmp"
        fresh.write_bytes(b"in progress")
        entry = tmp_path / "kept.pkl"
        entry.write_bytes(b"entry")

        cache = ArtifactCache(root=tmp_path)
        assert not stale.exists()  # the killed writer's orphan is gone
        assert fresh.exists()  # a concurrent writer's file is left alone
        assert entry.exists()
        assert cache.tmp_swept == 1
        assert cache.stats()["tmp_swept"] == 1

    def test_disabled_cache_does_not_sweep(self, tmp_path):
        import os

        from repro.harness.artifacts import _ORPHAN_TMP_AGE_SECONDS

        stale = tmp_path / "dead-writer.pkl.tmp"
        stale.write_bytes(b"torso")
        old = stale.stat().st_mtime - _ORPHAN_TMP_AGE_SECONDS - 60
        os.utime(stale, (old, old))
        cache = ArtifactCache(root=tmp_path, enabled=False)
        assert stale.exists()
        assert cache.tmp_swept == 0

    def test_context_reloads_workload_from_disk(self, tmp_path):
        warm = ExperimentContext(
            benchmarks=("gcc",), max_instructions=5_000, jobs=1,
            cache=ArtifactCache(root=tmp_path),
        )
        warm.workload("gcc")
        cold = ExperimentContext(
            benchmarks=("gcc",), max_instructions=5_000, jobs=1,
            cache=ArtifactCache(root=tmp_path),
        )
        reloaded = cold.workload("gcc")
        assert cold.cache.hits == 1
        assert len(reloaded.trace) == len(warm.workload("gcc").trace)


class TestCacheManagement:
    def _fill(self, cache, count):
        for index in range(count):
            cache.put(cache.compilation_key(f"bench{index}", 1.0, 8), index)

    def test_stats_report_entries_and_kinds(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        self._fill(cache, 3)
        stats = cache.stats()
        assert stats["entries"] == 3 and stats["bytes"] > 0
        assert stats["by_kind"]["compilation"]["entries"] == 3

    def test_clear_removes_everything(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        self._fill(cache, 3)
        assert cache.clear() == 3
        assert cache.stats()["entries"] == 0

    def test_enforce_limit_evicts_oldest_first(self, tmp_path):
        import os

        cache = ArtifactCache(root=tmp_path)
        keys = [cache.compilation_key(f"bench{i}", 1.0, 8) for i in range(3)]
        for stamp, key in enumerate(keys):
            cache.put(key, "x" * 256)
            os.utime(cache.path_for(key), (stamp, stamp))
        entry_size = cache.path_for(keys[0]).stat().st_size
        cache.enforce_limit(entry_size * 2)
        assert cache.get(keys[0]) is None  # oldest mtime evicted
        assert cache.get(keys[1]) is not None
        assert cache.get(keys[2]) is not None

    def test_get_refreshes_mtime_for_lru(self, tmp_path):
        import os

        cache = ArtifactCache(root=tmp_path)
        key = cache.compilation_key("gcc", 1.0, 8)
        cache.put(key, "payload")
        os.utime(cache.path_for(key), (1, 1))
        cache.get(key)
        assert cache.path_for(key).stat().st_mtime > 1

    def test_limit_from_env(self, monkeypatch):
        from repro.harness.artifacts import cache_limit_from_env

        monkeypatch.delenv("REPRO_CACHE_LIMIT_MB", raising=False)
        assert cache_limit_from_env() is None
        monkeypatch.setenv("REPRO_CACHE_LIMIT_MB", "100")
        assert cache_limit_from_env() == 100 * 1024 * 1024
        monkeypatch.setenv("REPRO_CACHE_LIMIT_MB", "lots")
        with pytest.raises(ValueError, match="REPRO_CACHE_LIMIT_MB"):
            cache_limit_from_env()


class TestResultCache:
    def test_opt_in_round_trip(self, tmp_path):
        from repro.sim import ooo_config

        def context():
            return ExperimentContext(
                benchmarks=("gcc",), max_instructions=5_000, jobs=1,
                cache=ArtifactCache(root=tmp_path), result_cache=True,
            )

        first = context().run("gcc", ooo_config(8))
        cold = context()
        again = cold.run("gcc", ooo_config(8))
        assert again.cycles == first.cycles
        assert any(
            path.name.startswith("result-") for path in tmp_path.iterdir()
        )

    def test_off_by_default(self, tmp_path, monkeypatch):
        from repro.sim import ooo_config

        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        ctx = ExperimentContext(
            benchmarks=("gcc",), max_instructions=5_000, jobs=1,
            cache=ArtifactCache(root=tmp_path),
        )
        assert ctx.result_cache is False
        ctx.run("gcc", ooo_config(8))
        assert not any(
            path.name.startswith("result-") for path in tmp_path.iterdir()
        )

    def test_key_distinguishes_sampling(self):
        from repro.sim import ooo_config
        from repro.sim.sampling import SamplingConfig

        exact = ArtifactCache.result_key(
            "gcc", 1.0, False, False, 8, "perceptron", 100, ooo_config(8), None
        )
        sampled = ArtifactCache.result_key(
            "gcc", 1.0, False, False, 8, "perceptron", 100, ooo_config(8),
            SamplingConfig().cache_token(),
        )
        assert exact != sampled


class TestEffectiveJobs:
    def test_clamps_to_pending(self):
        from repro.harness.parallel import effective_jobs

        assert effective_jobs(8, 0) == 1
        assert effective_jobs(1, 100) == 1

    def test_single_cpu_serializes(self, monkeypatch):
        import os

        from repro.harness import parallel

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert parallel.effective_jobs(4, 10) == 1

    def test_multi_cpu_keeps_pool(self, monkeypatch):
        import os

        from repro.harness import parallel

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert parallel.effective_jobs(4, 10) == 4
        assert parallel.effective_jobs(8, 3) == 3

    def test_clamps_to_cpu_count(self, monkeypatch):
        import os

        from repro.harness import parallel

        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert parallel.effective_jobs(16, 100) == 4


class TestNonForkFallback:
    def test_spawn_only_platform_runs_serially(self, monkeypatch, capsys):
        """Without the fork start method the sweep degrades to serial —
        loudly, and with results identical to the pool path."""
        import multiprocessing

        from repro.harness import SweepPoint, parallel
        from repro.sim import inorder_config, ooo_config

        real_get_context = multiprocessing.get_context

        def forkless_get_context(method=None):
            if method == "fork":
                raise ValueError("cannot find context for 'fork'")
            return real_get_context(method)

        monkeypatch.setattr(
            multiprocessing, "get_context", forkless_get_context
        )
        monkeypatch.setattr(parallel, "_NOTED", set())
        context = ExperimentContext(
            benchmarks=("gcc",), max_instructions=20_000, jobs=2,
            cache=ArtifactCache(enabled=False),
        )
        points = [
            SweepPoint("gcc", ooo_config(8)),
            SweepPoint("gcc", inorder_config(8)),
        ]
        results = parallel.run_points_parallel(context, points, jobs=2)
        note = capsys.readouterr().err
        assert "fork start method unavailable" in note
        assert [r.machine for r in results] == [
            ooo_config(8).name, inorder_config(8).name,
        ]
        # Same results the serial in-process path produces (memoized now).
        assert results[0].cycles == context.run("gcc", ooo_config(8)).cycles

    def test_note_logged_once(self, monkeypatch, capsys):
        from repro.harness import parallel

        monkeypatch.setattr(parallel, "_NOTED", set())
        parallel._note_once("same message")
        parallel._note_once("same message")
        assert capsys.readouterr().err.count("same message") == 1


class TestRunMany:
    def test_run_many_memoizes_and_dedups(self, quick_context):
        from repro.harness import SweepPoint
        from repro.sim import ooo_config

        point = SweepPoint("gcc", ooo_config(8))
        results = quick_context.run_many([point, point])
        assert results[point] is quick_context.run("gcc", ooo_config(8))


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "F1", "VC", "T1", "T2", "T3", "F5", "F6", "F7", "F8", "F9",
            "F10", "F11", "F12", "F13", "F14", "D1", "A1", "A2", "SV",
            "CS",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_tab1_shape(self, quick_context):
        result = tab1_braids_per_block(quick_context)
        assert set(result.rows) == set(quick_context.benchmarks)
        assert result.columns == ["braids/bb", "excl-single"]
        for row in result.rows.values():
            assert row["braids/bb"] >= row["excl-single"]

    def test_fig11_normalized_to_ooo(self, quick_context):
        result = fig11_braid_window(quick_context, windows=(1, 2))
        for row in result.rows.values():
            assert row["1"] <= row["2"] * 1.05  # monotone (small tolerance)

    def test_fig14_default_is_unity(self, quick_context):
        result = fig14_equal_fus(quick_context)
        for row in result.rows.values():
            assert row["8x2"] == 1.0


class TestReporting:
    def make_result(self):
        result = ExperimentResult(
            experiment_id="X",
            title="test",
            paper_expectation="n/a",
            columns=["a", "b"],
            rows={"bench1": {"a": 2.0, "b": 4.0}, "bench2": {"a": 1.0, "b": 3.0}},
        )
        return result

    def test_column_average(self):
        result = self.make_result()
        assert result.column_average("a") == pytest.approx(1.5)

    def test_column_geomean(self):
        result = self.make_result()
        assert result.column_geomean("a") == pytest.approx(2 ** 0.5)

    def test_finalize_averages(self):
        result = self.make_result()
        result.finalize_averages()
        assert result.averages["b"] == pytest.approx(3.5)

    def test_normalize_rows(self):
        result = self.make_result()
        normalize_rows(result, "a")
        assert result.rows["bench1"] == {"a": 1.0, "b": 2.0}
        assert result.rows["bench2"] == {"a": 1.0, "b": 3.0}

    def test_render_contains_everything(self):
        result = self.make_result()
        result.finalize_averages()
        result.notes.append("shape only")
        text = result.render()
        assert "== X: test" in text
        assert "bench1" in text and "average" in text
        assert "note: shape only" in text

    def test_render_handles_missing_cells(self):
        result = self.make_result()
        del result.rows["bench2"]["b"]
        assert "bench2" in result.render()
