"""Unit tests for simulation result containers."""

import pytest

from repro.sim.results import SimResult, StallCounters


def make(benchmark="gcc", machine="ooo-8w", cycles=1000, instructions=2500):
    return SimResult(
        benchmark=benchmark,
        machine=machine,
        cycles=cycles,
        instructions=instructions,
    )


class TestIpc:
    def test_ipc(self):
        assert make().ipc == 2.5

    def test_zero_cycles(self):
        assert make(cycles=0).ipc == 0.0

    def test_mispredict_rate(self):
        result = make()
        result.branches = 100
        result.mispredicts = 7
        assert result.mispredict_rate == pytest.approx(0.07)

    def test_mispredict_rate_no_branches(self):
        assert make().mispredict_rate == 0.0


class TestSpeedup:
    def test_speedup_over(self):
        fast = make(cycles=500)
        slow = make(cycles=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_rejects_cross_benchmark(self):
        with pytest.raises(ValueError, match="different benchmarks"):
            make(benchmark="gcc").speedup_over(make(benchmark="vpr"))

    def test_zero_baseline(self):
        baseline = make(cycles=0)
        assert make().speedup_over(baseline) == 0.0


class TestStallCounters:
    def test_as_dict_covers_all_fields(self):
        counters = StallCounters()
        counters.rename_width = 3
        data = counters.as_dict()
        assert data["rename_width"] == 3
        assert set(data) == {
            "fetch_buffer_empty", "alloc_width", "rename_width",
            "regfile_entries", "structure_full", "checkpoints",
            "in_flight_cap",
        }

    def test_summary_format(self):
        text = make().summary()
        assert "gcc" in text and "ooo-8w" in text and "IPC" in text


class TestCounterCoverage:
    """issued/stalls denominators: exact runs cover the whole trace,
    sampled runs cover only the measured windows."""

    def make_sampled(self):
        result = make()
        result.sampled = True
        result.sample_measured_instructions = 500
        result.issued = 600
        result.stalls.structure_full = 50
        return result

    def test_exact_counters_cover_whole_trace(self):
        result = make()
        result.issued = 3000
        assert result.counters_cover == result.instructions
        assert result.issue_rate == pytest.approx(3000 / 2500)

    def test_sampled_counters_cover_measured_windows_only(self):
        result = self.make_sampled()
        assert result.counters_cover == 500
        assert result.issue_rate == pytest.approx(600 / 500)

    def test_stall_rates_normalize_per_mode(self):
        exact = make()
        exact.stalls.structure_full = 250
        sampled = self.make_sampled()
        # 250/2500 vs 50/500: identical *rates* despite wildly different
        # raw counters — the comparison that raw mixing would get wrong.
        assert exact.stall_rates()["structure_full"] == pytest.approx(0.1)
        assert sampled.stall_rates()["structure_full"] == pytest.approx(0.1)

    def test_stall_rates_zero_cover(self):
        result = make(instructions=0)
        assert set(result.stall_rates()) == set(result.stalls.as_dict())
        assert all(v == 0.0 for v in result.stall_rates().values())
