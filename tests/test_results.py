"""Unit tests for simulation result containers."""

import pytest

from repro.sim.results import SimResult, StallCounters


def make(benchmark="gcc", machine="ooo-8w", cycles=1000, instructions=2500):
    return SimResult(
        benchmark=benchmark,
        machine=machine,
        cycles=cycles,
        instructions=instructions,
    )


class TestIpc:
    def test_ipc(self):
        assert make().ipc == 2.5

    def test_zero_cycles(self):
        assert make(cycles=0).ipc == 0.0

    def test_mispredict_rate(self):
        result = make()
        result.branches = 100
        result.mispredicts = 7
        assert result.mispredict_rate == pytest.approx(0.07)

    def test_mispredict_rate_no_branches(self):
        assert make().mispredict_rate == 0.0


class TestSpeedup:
    def test_speedup_over(self):
        fast = make(cycles=500)
        slow = make(cycles=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_rejects_cross_benchmark(self):
        with pytest.raises(ValueError, match="different benchmarks"):
            make(benchmark="gcc").speedup_over(make(benchmark="vpr"))

    def test_zero_baseline(self):
        baseline = make(cycles=0)
        assert make().speedup_over(baseline) == 0.0


class TestStallCounters:
    def test_as_dict_covers_all_fields(self):
        counters = StallCounters()
        counters.rename_width = 3
        data = counters.as_dict()
        assert data["rename_width"] == 3
        assert set(data) == {
            "fetch_buffer_empty", "alloc_width", "rename_width",
            "regfile_entries", "structure_full", "checkpoints",
            "in_flight_cap",
        }

    def test_summary_format(self):
        text = make().summary()
        assert "gcc" in text and "ooo-8w" in text and "IPC" in text
