"""Micro-benchmarked braid-core behaviours on hand-crafted programs.

Each test builds a tiny program whose braid structure is known exactly and
checks a specific mechanism of the braid microarchitecture in isolation.
"""

from dataclasses import replace

import pytest

from repro.core import braidify
from repro.isa import assemble
from repro.sim import braid_config, prepare_workload, simulate
from repro.sim.run import build_core


def braided_workload(source: str):
    program = assemble(source)
    compilation = braidify(program)
    return prepare_workload(compilation.translated, perfect=True)


class TestParallelBraids:
    # Four independent 4-instruction chains: with >= 4 BEUs they run in
    # parallel; with 1 BEU they serialize.
    SOURCE = "\n".join(
        f"""
        addq r31, #{k + 1}, r{4 * k + 1}
        addq r{4 * k + 1}, r{4 * k + 1}, r{4 * k + 2}
        addq r{4 * k + 2}, r{4 * k + 2}, r{4 * k + 3}
        stq  r{4 * k + 3}, {8 * k}(r31)
        """
        for k in range(4)
    )

    def test_beu_count_scales_independent_braids(self):
        workload = braided_workload(self.SOURCE)
        one = simulate(
            workload, replace(braid_config(8), clusters=1, name="b1")
        )
        four = simulate(
            workload, replace(braid_config(8), clusters=4, name="b4")
        )
        assert four.cycles < one.cycles

    def test_braids_distribute_round_robin(self):
        workload = braided_workload(self.SOURCE)
        core = build_core(workload, braid_config(8))
        core.run()
        used = [beu.braids_accepted for beu in core.beus]
        assert sum(used) == 4
        assert max(used) == 1  # each chain got its own BEU


class TestInternalVsExternalLatency:
    def test_internal_chain_avoids_external_ports(self):
        # A pure chain braid: all intermediate values internal; external RF
        # read ports should see only the block-entry live-ins.
        source = """
        addq r31, #3, r1
        addq r1, r1, r2
        addq r2, r2, r3
        addq r3, r3, r4
        addq r4, r4, r5
        stq r5, 0(r31)
        """
        workload = braided_workload(source)
        core = build_core(workload, braid_config(8))
        result = core.run()
        internal_reads = result.extra["internal_rf_reads"]
        assert internal_reads >= 4  # the chain hops ride the internal file

    def test_zero_external_read_ports_breaks_nothing_internal(self):
        # With external read ports starved to 1, internal traffic still
        # flows; the program completes (just slower on external reads).
        source = """
        addq r31, #3, r1
        addq r1, r1, r2
        addq r2, r2, r3
        stq r3, 0(r31)
        """
        workload = braided_workload(source)
        from repro.uarch.regfile import RegFileSpec

        starved = replace(
            braid_config(8),
            regfile=RegFileSpec(entries=8, read_ports=1, write_ports=1),
            name="braid-starved",
        )
        result = simulate(workload, starved)
        assert result.instructions == len(workload.trace)


class TestBranchResolutionInBraid:
    def test_branch_waits_for_its_braid_chain(self):
        # The branch test value is produced by a chain inside its braid; the
        # branch cannot resolve before the chain completes.
        source = """
        .block ENTRY
            addq r31, #2, r1
        .block LOOP
            mulq r1, r1, r2
            mulq r2, r2, r3
            cmplti r3, #0, r4
            bne r4, LOOP
        .block DONE
            nop
        """
        workload = braided_workload(source)
        core = build_core(workload, braid_config(8))
        core.trace_log = []
        core.run()
        branch = next(w for w in core.trace_log if w.is_branch)
        chain_end = max(
            w.complete_cycle for w in core.trace_log
            if w.cluster == branch.cluster and w.seq < branch.seq
        )
        assert branch.issue_cycle >= chain_end - 1
