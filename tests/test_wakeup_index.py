"""The O(woken) wakeup index and the next-event skip horizon.

Two families of pins for the scheduler-aware event kernel:

* **Wakeup-index oracle** — the pool-based out-of-order scheduler tracks
  ready-but-unissued candidates in an age-ordered ready heap, a
  wake-cycle-keyed deferred heap, and per-store parked lists.  The union
  of the three must equal a brute-force rescan of the reorder buffer
  (every dispatched, unissued instruction with no pending producer) at
  every single cycle — the invariant that makes popping instead of
  scanning sound.  Same oracle for the steering core's FIFOs: their
  contents are exactly the dispatched-but-unissued set, in dispatch
  order per FIFO.

* **Next-event corners** — `_next_event` returns a *skip target*: every
  cycle before it must be provably inert.  The corner cases are pinned
  directly on crafted core state: an empty completion heap with a
  same-cycle (or future) fetch resume must land exactly on the resume
  cycle, a done ROB head must bound the skip by its first retirable
  cycle, and a machine with no publisher armed must tick (return the
  current cycle) so the hang watchdog keeps authority.
"""

from __future__ import annotations

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.sim.config import depsteer_config, ooo_config
from repro.sim.core import PARKED, WInst
from repro.sim.run import build_core


@pytest.fixture(scope="module")
def small_ctx():
    return ExperimentContext(
        benchmarks=("gcc", "mcf"),
        max_instructions=8_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


def brute_force_ready(core):
    """The ready set by definition: rescan the whole in-flight window."""
    return {
        w.seq
        for w in core._rob
        if w.issue_cycle is None and w.pending == 0
    }


class TestWakeupIndexOracle:
    """The event-driven wakeup structures track the ready set exactly."""

    @pytest.mark.parametrize("name", ("gcc", "mcf"))
    def test_ooo_pools_match_rescan(self, name, small_ctx):
        """ready heap ∪ deferred heap ∪ parked == brute-force rescan."""
        workload = small_ctx.workload(name)
        core = build_core(workload, ooo_config(8))
        checked = 0

        def check(core, cycle):
            nonlocal checked
            indexed = {w.seq for _, w in core._ready}
            indexed |= {w.seq for _, _, w in core._deferred}
            # Parked candidates live only on a store's waiter list; count
            # them from the ROB by their sentinel wake.
            parked = {
                w.seq
                for w in core._rob
                if w.issue_cycle is None and w.issue_wake == PARKED
            }
            assert not (indexed & parked), (
                f"cycle {cycle}: candidates both pooled and parked: "
                f"{sorted(indexed & parked)}"
            )
            ready = brute_force_ready(core)
            assert indexed | parked == ready, (
                f"cycle {cycle}: wakeup index {sorted(indexed | parked)} "
                f"!= brute-force ready set {sorted(ready)}"
            )
            assert core._ready_unissued == len(ready)
            checked += 1

        core.invariant_hook = check
        core.run()
        assert checked > 100  # the oracle actually ran, cycle by cycle

    @pytest.mark.parametrize("name", ("gcc", "mcf"))
    def test_depsteer_fifos_match_rescan(self, name, small_ctx):
        """FIFO contents are exactly the dispatched-but-unissued set."""
        workload = small_ctx.workload(name)
        core = build_core(workload, depsteer_config(8))
        checked = 0

        def check(core, cycle):
            nonlocal checked
            steered = set()
            for index, fifo in enumerate(core._fifos):
                previous = -1
                for w in fifo:
                    assert w.issue_cycle is None, (
                        f"cycle {cycle}: issued seq={w.seq} still in "
                        f"FIFO {index}"
                    )
                    assert w.seq > previous, (
                        f"cycle {cycle}: FIFO {index} out of dispatch order"
                    )
                    previous = w.seq
                    steered.add(w.seq)
            unissued = {
                w.seq for w in core._rob if w.issue_cycle is None
            }
            assert steered == unissued, (
                f"cycle {cycle}: FIFO contents {sorted(steered)} != "
                f"in-flight unissued {sorted(unissued)}"
            )
            assert core._ready_unissued == len(brute_force_ready(core))
            checked += 1

        core.invariant_hook = check
        core.run()
        assert checked > 100

    def test_ooo_deferred_entries_are_operand_ready(self, small_ctx):
        """A deferred candidate never has pending producers (deferral is
        a certified resource wake, not an operand wait)."""
        workload = small_ctx.workload("mcf")
        core = build_core(workload, ooo_config(8))

        def check(core, cycle):
            for wake, _seq, w in core._deferred:
                assert w.pending == 0
                assert w.issue_wake == wake or w.issue_wake == PARKED

        core.invariant_hook = check
        core.run()


def quiesce(core):
    """Strip a freshly built core to an everything-empty state."""
    core._fetch_buffer.clear()
    core._rob.clear()
    core._events.clear()
    core._miss_releases.clear()
    core._pending_writeback.clear()
    core._next_fetch = core._fetch_limit  # trace exhausted
    core._fetch_blocked = False
    core._fetch_resume = 0
    core._ready_unissued = 0
    return core


def make_winst(core, index=0, fetch=0, ready=0):
    dyn = core.trace[index]
    return WInst(dyn, core.decoded[index], fetch, ready,
                 dyn.seq in core.mispredicted)


class TestNextEventCorners:
    """Skip targets never overshoot the first possibly-active cycle."""

    @pytest.fixture()
    def core(self, small_ctx):
        return quiesce(build_core(small_ctx.workload("gcc"), ooo_config(8)))

    def test_same_cycle_fetch_resume_with_empty_heap(self, core):
        """A redirect landing the resume on the *current* cycle must not
        skip at all — fetch can act right now, completion heap or not."""
        core._next_fetch = 0
        core._fetch_resume = 100
        assert core._next_event(100) == 100

    def test_future_fetch_resume_lands_exactly(self, core):
        """With only the fetch-resume publisher armed the skip target is
        the resume cycle itself, never one past it."""
        core._next_fetch = 0
        core._fetch_resume = 107
        assert core._next_event(100) == 107
        # A due completion event pins the machine to the current cycle
        # even though fetch itself resumes later.
        winst = make_winst(core)
        core._events.append((100, winst.seq, winst))
        assert core._next_event(100) == 100

    def test_rob_head_first_retirable_bound(self, core):
        """A done ROB head bounds the skip by complete_cycle + 1 — the
        first cycle retire_stage can pop it."""
        winst = make_winst(core)
        winst.done = True
        winst.complete_cycle = 105
        core._rob.append(winst)
        assert core._next_event(100) == 106
        # Once that cycle is reached, no skip: retirement may fire now.
        assert core._next_event(106) == 106

    def test_fetch_buffer_head_dispatch_ready_bound(self, core):
        winst = make_winst(core, ready=104)
        core._fetch_buffer.append(winst)
        assert core._next_event(100) == 104
        assert core._next_event(104) == 104

    def test_nothing_armed_ticks(self, core):
        """No publisher armed: return the current cycle so a wedged
        machine single-steps into the retirement watchdog."""
        assert core._next_event(42) == 42

    def test_issue_horizon_argument_bounds_the_skip(self, core):
        """Regression: the fetch-resume publisher used to *overwrite* a
        smaller issue horizon instead of taking the minimum, so a skip
        after a mispredict redirect could overshoot a deferred
        candidate's certified wake cycle."""
        core._next_fetch = 0
        core._fetch_resume = 120
        assert core._next_event(100, 103) == 103
        assert core._next_event(100, 100) == 100
        # A stale (past) horizon also means "may act now".
        assert core._next_event(100, 99) == 100

    def test_skip_idle_respects_pending_writeback(self, core):
        """A queued writeback blocks skipping outright: write ports are a
        per-cycle resource the event heap does not model."""
        winst = make_winst(core)
        core._pending_writeback.append(winst)
        core._fetch_resume = 200
        core._next_fetch = 0
        assert core._skip_idle(100) == 100


class TestIssueHorizonPublishers:
    """The scheduler arm of the contract, on crafted scheduler state."""

    def test_ooo_ready_heap_pins_now(self, small_ctx):
        core = quiesce(build_core(small_ctx.workload("gcc"), ooo_config(8)))
        winst = make_winst(core)
        core._ready.append((winst.seq, winst))
        assert core.issue_horizon(50) == 50
        # one certified-idleness entry point: _skip_idle must not skip
        assert core._skip_idle(50) == 50

    def test_ooo_deferred_head_is_the_horizon(self, small_ctx):
        core = quiesce(build_core(small_ctx.workload("gcc"), ooo_config(8)))
        winst = make_winst(core)
        winst.issue_wake = 57
        core._deferred.append((57, winst.seq, winst))
        assert core.issue_horizon(50) == 57
        assert core.issue_horizon(57) == 57
        assert core.issue_horizon(60) == 60  # overdue wake: act now

    def test_ooo_all_parked_yields_none(self, small_ctx):
        core = quiesce(build_core(small_ctx.workload("gcc"), ooo_config(8)))
        assert core.issue_horizon(50) is None

    def test_depsteer_head_states(self, small_ctx):
        core = quiesce(
            build_core(small_ctx.workload("gcc"), depsteer_config(8))
        )
        pending = make_winst(core, index=0)
        pending.pending = 1
        core._fifos[0].append(pending)
        # Every head pending: completion-driven, publish no horizon.
        assert core.issue_horizon(50) is None
        bounded = make_winst(core, index=1)
        bounded.issue_wake = 55
        core._fifos[1].append(bounded)
        assert core.issue_horizon(50) == 55
        free = make_winst(core, index=2)
        core._fifos[2].append(free)
        assert core.issue_horizon(50) == 50

    def test_depsteer_parked_head_yields_none(self, small_ctx):
        core = quiesce(
            build_core(small_ctx.workload("gcc"), depsteer_config(8))
        )
        parked = make_winst(core)
        parked.issue_wake = PARKED
        core._fifos[0].append(parked)
        assert core.issue_horizon(50) is None
