"""Smoke tests: every example script runs end to end and prints its story."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, *args):
    monkeypatch.setattr(sys, "argv", [name, *args])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py")
        assert "braided program" in out
        assert "braid achieves" in out
        assert ";S" in out  # annotated braid start bits visible

    def test_braid_inspector(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "braid_inspector.py", "gcc_life")
        assert "braid 0" in out
        assert "value characterization" in out
        assert "ext-in" in out

    def test_braid_inspector_rejects_unknown(self, monkeypatch, capsys):
        with pytest.raises(SystemExit):
            run_example(monkeypatch, capsys, "braid_inspector.py", "quake3")

    def test_design_space_explorer(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "design_space_explorer.py", "gcc", "0.5"
        )
        assert "number of BEUs" in out
        assert "equal FU budget" in out

    def test_paradigm_faceoff(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "paradigm_faceoff.py", "8", "gcc"
        )
        assert "in-order" in out
        assert "average" in out

    def test_complexity_report(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "complexity_report.py", "gcc")
        assert "structure costs" in out
        assert "braid/ooo IPC" in out

    def test_pipeline_trace(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "pipeline_trace.py", "checksum", "8"
        )
        assert "f=fetch" in out
        assert "braid 8-wide" in out
