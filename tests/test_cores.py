"""Integration tests: the four timing cores on real workloads."""

import pytest

from repro.core import braidify
from repro.sim import (
    BraidCore,
    DependenceSteeringCore,
    InOrderCore,
    OutOfOrderCore,
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
    prepare_workload,
    simulate,
)
from repro.sim.run import build_core
from repro.workloads import build_program, kernel


@pytest.fixture(scope="module")
def gcc_workloads():
    program = build_program("gcc")
    compilation = braidify(program)
    return {
        "plain": prepare_workload(program),
        "braided": prepare_workload(compilation.translated),
    }


class TestBasicExecution:
    @pytest.mark.parametrize(
        "factory,key",
        [
            (ooo_config, "plain"),
            (inorder_config, "plain"),
            (depsteer_config, "plain"),
            (braid_config, "braided"),
        ],
    )
    def test_all_instructions_retire(self, gcc_workloads, factory, key):
        workload = gcc_workloads[key]
        result = simulate(workload, factory(8))
        assert result.instructions == len(workload.trace)
        assert result.cycles > 0
        assert 0.0 < result.ipc <= 8.0

    def test_build_core_dispatch(self, gcc_workloads):
        assert isinstance(
            build_core(gcc_workloads["plain"], ooo_config(8)), OutOfOrderCore
        )
        assert isinstance(
            build_core(gcc_workloads["plain"], inorder_config(8)), InOrderCore
        )
        assert isinstance(
            build_core(gcc_workloads["plain"], depsteer_config(8)),
            DependenceSteeringCore,
        )
        assert isinstance(
            build_core(gcc_workloads["braided"], braid_config(8)), BraidCore
        )

    def test_deterministic_cycle_counts(self, gcc_workloads):
        first = simulate(gcc_workloads["plain"], ooo_config(8))
        second = simulate(gcc_workloads["plain"], ooo_config(8))
        assert first.cycles == second.cycles


class TestParadigmOrdering:
    def test_inorder_is_slowest(self, gcc_workloads):
        ooo = simulate(gcc_workloads["plain"], ooo_config(8))
        inorder = simulate(gcc_workloads["plain"], inorder_config(8))
        assert inorder.ipc < ooo.ipc

    def test_braid_is_competitive_with_ooo(self, gcc_workloads):
        ooo = simulate(gcc_workloads["plain"], ooo_config(8))
        braid = simulate(gcc_workloads["braided"], braid_config(8))
        assert braid.ipc > 0.5 * ooo.ipc

    def test_braid_beats_inorder(self, gcc_workloads):
        inorder = simulate(gcc_workloads["plain"], inorder_config(8))
        braid = simulate(gcc_workloads["braided"], braid_config(8))
        assert braid.ipc > inorder.ipc

    def test_wider_ooo_is_not_slower_with_perfect_front_end(self):
        program = build_program("gcc")
        workload = prepare_workload(program, perfect=True)
        narrow = simulate(workload, ooo_config(4))
        wide = simulate(workload, ooo_config(16))
        assert wide.ipc >= narrow.ipc * 0.98


class TestBraidCoreBehaviour:
    def test_beus_share_work(self, gcc_workloads):
        core = build_core(gcc_workloads["braided"], braid_config(8))
        core.run()
        issued = core.beu_utilization()
        assert sum(issued) == len(gcc_workloads["braided"].trace)
        assert sum(1 for count in issued if count > 0) >= 4

    def test_single_beu_serializes(self, gcc_workloads):
        from dataclasses import replace

        one = simulate(
            gcc_workloads["braided"],
            replace(braid_config(8), clusters=1, name="braid-1beu"),
        )
        eight = simulate(gcc_workloads["braided"], braid_config(8))
        assert eight.ipc > 1.5 * one.ipc

    def test_tiny_fifo_still_correct(self, gcc_workloads):
        from dataclasses import replace

        result = simulate(
            gcc_workloads["braided"],
            replace(braid_config(8), cluster_entries=4, name="braid-fifo4"),
        )
        assert result.instructions == len(gcc_workloads["braided"].trace)

    def test_braid_core_runs_untranslated_code(self, gcc_workloads):
        # Untranslated code has no S bits: everything lands in one BEU.
        result = simulate(gcc_workloads["plain"], braid_config(8))
        assert result.instructions == len(gcc_workloads["plain"].trace)

    def test_shorter_pipeline_helps(self, gcc_workloads):
        from dataclasses import replace

        short = simulate(gcc_workloads["braided"], braid_config(8))
        long_front = replace(braid_config(8).front_end, depth=8, redirect=13)
        long = simulate(
            gcc_workloads["braided"],
            replace(braid_config(8), front_end=long_front, name="braid-long"),
        )
        assert short.ipc >= long.ipc


class TestPerfectFrontEnd:
    def test_perfect_is_faster(self):
        program = build_program("mcf")
        real = simulate(prepare_workload(program), ooo_config(8))
        ideal = simulate(prepare_workload(program, perfect=True), ooo_config(8))
        assert ideal.ipc > real.ipc


class TestKernels:
    @pytest.mark.parametrize("name", ("daxpy", "dot_product", "checksum"))
    def test_kernels_run_on_all_cores(self, name):
        program = kernel(name)
        compilation = braidify(program)
        plain = prepare_workload(program)
        braided = prepare_workload(compilation.translated)
        for config, workload in (
            (ooo_config(8), plain),
            (inorder_config(8), plain),
            (depsteer_config(8), plain),
            (braid_config(8), braided),
        ):
            result = simulate(workload, config)
            assert result.instructions == len(workload.trace)

    def test_pointer_chase_is_latency_bound(self):
        program = kernel("pointer_chase")
        workload = prepare_workload(program)
        result = simulate(workload, ooo_config(8))
        # Serial loads: even the aggressive machine is far from peak.
        assert result.ipc < 4.0


class TestResultFields:
    def test_result_metadata(self, gcc_workloads):
        result = simulate(gcc_workloads["plain"], ooo_config(8))
        assert result.benchmark == "gcc"
        assert result.machine == "ooo-8w"
        assert result.branches == gcc_workloads["plain"].stats.branches
        assert result.issued == result.instructions
        assert "IPC" in result.summary()

    def test_speedup_over(self, gcc_workloads):
        ooo = simulate(gcc_workloads["plain"], ooo_config(8))
        inorder = simulate(gcc_workloads["plain"], inorder_config(8))
        assert inorder.speedup_over(ooo) == pytest.approx(
            inorder.ipc / ooo.ipc
        )

    def test_speedup_rejects_cross_benchmark(self):
        a = simulate(prepare_workload(build_program("gcc")), ooo_config(8))
        b = simulate(prepare_workload(build_program("vpr")), ooo_config(8))
        with pytest.raises(ValueError):
            a.speedup_over(b)
