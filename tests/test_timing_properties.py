"""Property-style invariant tests over the timing cores.

These run real workloads with tracing enabled and check machine-wide
invariants that must hold for *every* instruction on *every* paradigm:
stage monotonicity, in-order retirement, dependence-respecting issue,
per-cycle width bounds, and determinism.
"""

from collections import Counter

import pytest

from repro.core import braidify
from repro.sim import (
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
    prepare_workload,
)
from repro.sim.run import build_core
from repro.workloads import build_program

CONFIGS = [
    ("ooo", ooo_config(8), False),
    ("inorder", inorder_config(8), False),
    ("depsteer", depsteer_config(8), False),
    ("braid", braid_config(8), True),
]


@pytest.fixture(scope="module")
def traced_runs():
    program = build_program("twolf")
    compilation = braidify(program)
    plain = prepare_workload(program, max_instructions=6000)
    braided = prepare_workload(compilation.translated, max_instructions=6000)
    runs = {}
    for name, config, braided_flag in CONFIGS:
        core = build_core(braided if braided_flag else plain, config)
        core.trace_log = []
        result = core.run()
        runs[name] = (core, result)
    return runs


@pytest.mark.parametrize("name", [c[0] for c in CONFIGS])
class TestPerInstructionInvariants:
    def test_stage_monotonicity(self, traced_runs, name):
        core, _ = traced_runs[name]
        for winst in core.trace_log:
            assert winst.fetch_cycle <= winst.dispatch_cycle
            assert winst.dispatch_cycle < winst.issue_cycle
            assert winst.issue_cycle < winst.complete_cycle
            assert winst.complete_cycle < winst.retire_cycle

    def test_every_instruction_retired_once(self, traced_runs, name):
        core, result = traced_runs[name]
        assert len(core.trace_log) == result.instructions
        seqs = [w.seq for w in core.trace_log]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_retirement_is_in_program_order(self, traced_runs, name):
        core, _ = traced_runs[name]
        retire_cycles = [w.retire_cycle for w in core.trace_log]
        assert retire_cycles == sorted(retire_cycles)

    def test_issue_respects_register_dependences(self, traced_runs, name):
        core, _ = traced_runs[name]
        for winst in core.trace_log:
            for producer, internal in winst.deps:
                if producer is None:
                    continue
                assert producer.complete_cycle <= winst.issue_cycle

    def test_execution_latency_at_least_opcode_latency(self, traced_runs, name):
        core, _ = traced_runs[name]
        for winst in core.trace_log:
            span = winst.complete_cycle - winst.issue_cycle
            if winst.is_load:
                assert span >= core.l1d_latency
            else:
                assert span >= winst.latency

    def test_issue_width_bound_every_cycle(self, traced_runs, name):
        core, result = traced_runs[name]
        per_cycle = Counter(w.issue_cycle for w in core.trace_log)
        config = dict((c[0], c[1]) for c in CONFIGS)[name]
        if name == "braid":
            bound = config.clusters * config.beu_functional_units
        else:
            bound = config.issue_width
        assert max(per_cycle.values()) <= bound

    def test_retire_width_bound_every_cycle(self, traced_runs, name):
        core, _ = traced_runs[name]
        per_cycle = Counter(w.retire_cycle for w in core.trace_log)
        config = dict((c[0], c[1]) for c in CONFIGS)[name]
        assert max(per_cycle.values()) <= config.issue_width

    def test_dispatch_width_bound_every_cycle(self, traced_runs, name):
        core, _ = traced_runs[name]
        per_cycle = Counter(w.dispatch_cycle for w in core.trace_log)
        config = dict((c[0], c[1]) for c in CONFIGS)[name]
        assert max(per_cycle.values()) <= config.front_end.alloc_width


class TestInOrderSpecifics:
    def test_inorder_issue_is_program_ordered(self, traced_runs):
        core, _ = traced_runs["inorder"]
        issue_cycles = [w.issue_cycle for w in core.trace_log]
        assert issue_cycles == sorted(issue_cycles)


class TestBraidSpecifics:
    def test_braid_instructions_issue_in_order_within_beu_fifo_windows(
        self, traced_runs
    ):
        # Issue order within a BEU may slip inside the window, but never by
        # more than the window size.
        core, _ = traced_runs["braid"]
        per_beu = {}
        for winst in core.trace_log:
            per_beu.setdefault(winst.cluster, []).append(winst)
        window = braid_config(8).beu_window
        for instructions in per_beu.values():
            issue_order = sorted(instructions, key=lambda w: (w.issue_cycle, w.seq))
            for position, winst in enumerate(issue_order):
                dispatch_rank = instructions.index(winst)
                assert abs(dispatch_rank - position) < window + 8

    def test_braids_never_split_across_beus(self, traced_runs):
        core, _ = traced_runs["braid"]
        current_braid_cluster = None
        for winst in core.trace_log:
            if winst.dyn.inst.annot.start:
                current_braid_cluster = winst.cluster
            assert winst.cluster == current_braid_cluster


class TestDeterminism:
    def test_identical_reruns(self):
        program = build_program("gap")
        workload = prepare_workload(program, max_instructions=3000)
        first = build_core(workload, ooo_config(8)).run()
        second = build_core(workload, ooo_config(8)).run()
        assert first.cycles == second.cycles
        assert first.extra == second.extra
