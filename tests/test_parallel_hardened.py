"""Hardened task dispatch and worker-death resilience (repro.harness.parallel).

Fault-injection campaigns run tasks that are *expected* to wedge or kill
their workers; these tests drive ``run_tasks_hardened`` through every
failure mode it guarantees against — worker death, wall-clock timeouts,
exceptions escaping the task function — plus the sweep-side
``_collect_resilient`` guarantee that a dead pool worker never loses
completed results.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.harness.parallel import (
    TaskOutcome,
    _collect_resilient,
    run_tasks_hardened,
)


def _has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


needs_fork = pytest.mark.skipif(
    not _has_fork(), reason="requires the fork start method"
)


# Worker functions live at module level so every start method can reach
# them; cross-process state goes through flag files under the payload dir.

def _double(payload):
    return payload * 2


def _raise_value_error(payload):
    raise ValueError(f"boom on {payload}")


def _raise_os_error(payload):
    raise OSError(f"transient infra failure on {payload}")


def _die_immediately(payload):
    os._exit(11)


def _die_first_attempt(payload):
    """Kill the worker on the first attempt, succeed on retries."""
    flag = payload + ".seen"
    if not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8"):
            pass
        os._exit(13)
    return "recovered"


def _sleep_forever(payload):
    time.sleep(600)


def _crash_pool_worker(payload):
    if payload == "die":
        os._exit(7)
    return payload.upper()


class TestSerialPath:
    def test_ok_results_in_task_order(self):
        outcomes = run_tasks_hardened(
            _double, [("a", 1), ("b", 2), ("c", 3)], jobs=1
        )
        assert [o.task_id for o in outcomes] == ["a", "b", "c"]
        assert [o.result for o in outcomes] == [2, 4, 6]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_permanent_exception_fails_fast(self):
        # A ValueError is a *task* error, not an infrastructure failure:
        # the retry policy classifies it permanent and retrying would
        # just repeat it, so the task quarantines after one attempt.
        outcomes = run_tasks_hardened(
            _raise_value_error, [("a", 1)], jobs=1, max_attempts=3
        )
        outcome = outcomes[0]
        assert outcome.status == "quarantined" and not outcome.ok
        assert outcome.permanent
        assert outcome.attempts == 1
        assert len(outcome.failures) == 1
        assert "ValueError" in outcome.error

    def test_retryable_exception_retried_then_quarantined(self):
        outcomes = run_tasks_hardened(
            _raise_os_error, [("a", 1)], jobs=1, max_attempts=3,
            backoff=0.01,
        )
        outcome = outcomes[0]
        assert outcome.status == "quarantined" and not outcome.ok
        assert not outcome.permanent
        assert outcome.attempts == 3
        assert len(outcome.failures) == 3
        assert "OSError" in outcome.error

    def test_quarantine_does_not_abort_later_tasks(self):
        outcomes = run_tasks_hardened(
            lambda p: _raise_value_error(p) if p == 1 else p,
            [("bad", 1), ("good", 2)],
            jobs=1, max_attempts=2,
        )
        assert not outcomes[0].ok
        assert outcomes[1].ok and outcomes[1].result == 2

    def test_on_result_fires_once_per_task(self):
        settled = []
        run_tasks_hardened(
            _double, [("a", 1), ("b", 2)], jobs=1, on_result=settled.append
        )
        assert [o.task_id for o in settled] == ["a", "b"]
        assert all(isinstance(o, TaskOutcome) for o in settled)

    def test_empty_task_list(self):
        assert run_tasks_hardened(_double, [], jobs=4) == []


@needs_fork
class TestHardenedWorkers:
    def test_parallel_ok_path(self):
        outcomes = run_tasks_hardened(
            _double, [(str(i), i) for i in range(6)], jobs=2, timeout=30.0
        )
        assert [o.result for o in outcomes] == [0, 2, 4, 6, 8, 10]
        assert all(o.ok for o in outcomes)

    def test_dead_worker_does_not_lose_completed_work(self):
        tasks = [("ok-1", 1), ("fatal", 2), ("ok-2", 3)]

        def fn(payload):
            if payload == 2:
                os._exit(11)
            return payload * 2

        outcomes = run_tasks_hardened(
            fn, tasks, jobs=2, timeout=30.0, max_attempts=2, backoff=0.05
        )
        by_id = {o.task_id: o for o in outcomes}
        assert by_id["ok-1"].ok and by_id["ok-1"].result == 2
        assert by_id["ok-2"].ok and by_id["ok-2"].result == 6
        fatal = by_id["fatal"]
        assert fatal.status == "quarantined"
        assert fatal.attempts == 2
        assert "worker died mid-task" in fatal.error

    def test_worker_death_retries_with_fresh_worker(self, tmp_path):
        payload = str(tmp_path / "attempt")
        outcomes = run_tasks_hardened(
            _die_first_attempt, [("t", payload)],
            jobs=2, timeout=30.0, max_attempts=3, backoff=0.05,
        )
        outcome = outcomes[0]
        assert outcome.ok and outcome.result == "recovered"
        assert outcome.attempts == 2
        assert len(outcome.failures) == 1
        assert "worker died" in outcome.failures[0]

    def test_wall_clock_timeout_kills_and_quarantines(self):
        started = time.monotonic()
        outcomes = run_tasks_hardened(
            _sleep_forever, [("stuck", None)],
            jobs=2, timeout=1.0, max_attempts=1,
        )
        elapsed = time.monotonic() - started
        outcome = outcomes[0]
        assert outcome.status == "quarantined"
        assert "timeout" in outcome.error
        assert elapsed < 30.0  # the watchdog, not the sleep, ended the task

    def test_incremental_delivery_under_failures(self):
        settled = []

        def fn(payload):
            if payload == "die":
                os._exit(9)
            return payload

        run_tasks_hardened(
            fn, [("a", "x"), ("b", "die"), ("c", "y")],
            jobs=2, timeout=30.0, max_attempts=1, on_result=settled.append,
        )
        assert sorted(o.task_id for o in settled) == ["a", "b", "c"]


@needs_fork
class TestCollectResilient:
    def test_pool_break_keeps_finished_results(self):
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            futures = [
                pool.submit(_crash_pool_worker, payload)
                for payload in ("first", "die", "last")
            ]
            results = _collect_resilient(
                futures,
                labels=["first", "die", "last"],
                serial_fn=lambda index: ("first", "die", "last")[
                    index
                ].upper(),
            )
        # The completed result survives; the in-flight and queued tasks
        # are recomputed serially in the parent.
        assert results == ["FIRST", "DIE", "LAST"]

    def test_clean_pool_passes_through(self):
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=2, mp_context=ctx) as pool:
            futures = [
                pool.submit(_crash_pool_worker, payload)
                for payload in ("a", "b")
            ]
            results = _collect_resilient(
                futures, labels=["a", "b"],
                serial_fn=lambda index: pytest.fail("no rerun expected"),
            )
        assert results == ["A", "B"]
