"""Unit tests for braid identification (graph colouring)."""

from repro.core.partition import braid_of_position, partition_block
from repro.dataflow.graph import BlockGraph
from repro.isa import assemble


def partition(source: str, block: int = 0):
    program = assemble(source)
    graph = BlockGraph(program.blocks[block])
    return graph, partition_block(graph)


class TestBasics:
    def test_every_instruction_in_exactly_one_braid(self, gcc_life):
        for block in gcc_life.blocks:
            graph = BlockGraph(block)
            braids = partition_block(graph)
            covered = sorted(p for b in braids for p in b.positions)
            assert covered == list(range(len(block.instructions)))

    def test_braids_ordered_by_first_position(self, gcc_life):
        for block in gcc_life.blocks:
            braids = partition_block(BlockGraph(block))
            firsts = [braid.first_position for braid in braids]
            assert firsts == sorted(firsts)

    def test_empty_block(self):
        program = assemble("nop")
        program.blocks[0].instructions.clear()
        assert partition_block(BlockGraph(program.blocks[0])) == []

    def test_braid_of_position_map(self):
        _, braids = partition(
            """
            addq r1, r2, r3
            addq r3, r3, r4
            addq r5, r6, r7
            """
        )
        owner = braid_of_position(braids)
        assert owner[0] == owner[1]
        assert owner[2] != owner[0]


class TestPaperExample:
    """The Figure 2 LOOP block must partition into the paper's braids."""

    def loop_braids(self, gcc_life):
        loop = gcc_life.block_by_label("LOOP")
        graph = BlockGraph(loop)
        return loop, partition_block(graph)

    def test_loop_has_four_braids(self, gcc_life):
        # Braid 1 (mask computation incl. the bne), braid 2 (induction
        # increment + compare), braid 3 (single lda), and the cmovne's
        # chain is part of braid 1.  The beq lives in the next block.
        _, braids = self.loop_braids(gcc_life)
        assert len(braids) == 3

    def test_big_braid_contains_loads_and_branch(self, gcc_life):
        loop, braids = self.loop_braids(gcc_life)
        big = max(braids, key=lambda b: b.size)
        opcodes = {loop.instructions[p].opcode.name for p in big.positions}
        assert {"ldl", "andnot", "and", "zapnoti", "cmovnei", "bne"} <= opcodes

    def test_induction_braid(self, gcc_life):
        loop, braids = self.loop_braids(gcc_life)
        induction = [
            b for b in braids
            if {loop.instructions[p].opcode.name for p in b.positions}
            == {"addli", "cmpeq"}
        ]
        assert len(induction) == 1
        assert induction[0].size == 2

    def test_lda_is_single_instruction_braid(self, gcc_life):
        loop, braids = self.loop_braids(gcc_life)
        singles = [b for b in braids if b.is_single]
        assert len(singles) == 1
        only = loop.instructions[singles[0].positions[0]]
        assert only.opcode.name == "lda"


class TestShapes:
    def test_size_and_width(self):
        graph, braids = partition(
            """
            addq r1, r2, r3
            addq r3, r3, r4
            addq r4, r4, r5
            """
        )
        assert len(braids) == 1
        assert braids[0].size == 3
        assert braids[0].width(graph) == 1.0

    def test_wide_braid(self):
        graph, braids = partition(
            """
            addq r1, r2, r3
            addq r4, r5, r6
            addq r3, r6, r7
            """
        )
        assert len(braids) == 1
        assert braids[0].width(graph) == 1.5

    def test_cmov_links_old_destination(self):
        # cmovne reads its old destination, so the producer of that value
        # lands in the same braid.
        _, braids = partition(
            """
            addq r1, r2, r3
            cmovne r4, r5, r3
            """
        )
        assert len(braids) == 1

    def test_split_at(self):
        _, braids = partition(
            """
            addq r1, r2, r3
            addq r3, r3, r4
            addq r4, r4, r5
            """
        )
        head, tail = braids[0].split_at(1)
        assert head.positions == [0]
        assert tail.positions == [1, 2]

    def test_split_bounds(self):
        import pytest

        _, braids = partition("addq r1, r2, r3")
        with pytest.raises(ValueError):
            braids[0].split_at(0)
        with pytest.raises(ValueError):
            braids[0].split_at(1)
