"""Unit tests for opcode semantics and metadata."""

import pytest

from repro.isa.opcodes import (
    CATEGORY_LATENCY,
    IMM_VARIANTS,
    MASK64,
    EncodingFormat,
    OpCategory,
    all_opcodes,
    opcode_by_name,
    to_signed,
    to_unsigned,
)


def run(name, srcs, imm=0):
    return opcode_by_name(name).semantics(srcs, imm)


class TestHelpers:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(MASK64) == -1

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1) == MASK64
        assert to_unsigned(1 << 64) == 0

    def test_round_trip(self):
        for value in (-7, 0, 9, -(1 << 63), (1 << 63) - 1):
            assert to_signed(to_unsigned(value)) == value


class TestIntegerAlu:
    def test_addq_wraps(self):
        assert run("addq", (MASK64, 2)) == 1

    def test_subq(self):
        assert run("subq", (3, 5)) == to_unsigned(-2)

    def test_addl_sign_extends(self):
        # 32-bit overflow wraps and sign-extends (Alpha addl behaviour).
        assert run("addl", (0x7FFFFFFF, 1)) == to_unsigned(-(1 << 31))

    def test_logicals(self):
        assert run("and", (0b1100, 0b1010)) == 0b1000
        assert run("bis", (0b1100, 0b1010)) == 0b1110
        assert run("xor", (0b1100, 0b1010)) == 0b0110
        assert run("andnot", (0b1111, 0b0101)) == 0b1010

    def test_shifts(self):
        assert run("sll", (1, 8)) == 256
        assert run("srl", (256, 8)) == 1
        assert run("sra", (to_unsigned(-8), 1)) == to_unsigned(-4)

    def test_shift_amount_masked_to_six_bits(self):
        assert run("sll", (1, 64)) == 1  # 64 & 63 == 0

    def test_compares(self):
        assert run("cmpeq", (4, 4)) == 1
        assert run("cmpeq", (4, 5)) == 0
        assert run("cmplt", (to_unsigned(-1), 0)) == 1
        assert run("cmpult", (to_unsigned(-1), 0)) == 0  # unsigned max

    def test_zapnot_keeps_selected_bytes(self):
        value = 0x1122334455667788
        assert run("zapnot", (value, 0x0F)) == 0x55667788
        assert run("zapnoti", (value,), imm=15) == 0x55667788

    def test_lda_ldah(self):
        assert run("lda", (0x1000,), imm=8) == 0x1008
        assert run("ldah", (0,), imm=2) == 0x20000


class TestImmediateVariants:
    def test_every_variant_exists(self):
        for base, variant in IMM_VARIANTS.items():
            assert opcode_by_name(base) is not None
            assert opcode_by_name(variant).num_srcs < opcode_by_name(base).num_srcs

    def test_addqi(self):
        assert run("addqi", (40,), imm=2) == 42

    def test_cmplti(self):
        assert run("cmplti", (to_unsigned(-3),), imm=0) == 1

    def test_mulqi(self):
        assert run("mulqi", (6,), imm=7) == 42


class TestConditionalMoves:
    def test_cmovne_moves_when_nonzero(self):
        assert run("cmovne", (1, 99, 5)) == 99

    def test_cmovne_keeps_old_when_zero(self):
        assert run("cmovne", (0, 99, 5)) == 5

    def test_cmoveq(self):
        assert run("cmoveq", (0, 99, 5)) == 99

    def test_cmovnei_immediate(self):
        assert run("cmovnei", (1, 5), imm=123) == 123
        assert run("cmovnei", (0, 5), imm=123) == 5


class TestFloatingPoint:
    def test_addt(self):
        assert run("addt", (1.5, 2.5)) == 4.0

    def test_mult(self):
        assert run("mult", (3.0, 4.0)) == 12.0

    def test_div_by_zero_is_quashed(self):
        assert run("divt", (1.0, 0.0)) == 0.0

    def test_sqrtt_of_negative_uses_magnitude(self):
        assert run("sqrtt", (-4.0,)) == 2.0

    def test_compare_produces_flag(self):
        assert run("cmptlt", (1.0, 2.0)) == 1.0
        assert run("cmptlt", (2.0, 1.0)) == 0.0

    def test_transfers(self):
        assert run("itoft", (to_unsigned(-3),)) == -3.0
        assert run("ftoit", (-3.0,)) == to_unsigned(-3)


class TestBranches:
    @pytest.mark.parametrize(
        "name,value,taken",
        [
            ("beq", 0, True), ("beq", 1, False),
            ("bne", 0, False), ("bne", 1, True),
            ("blt", to_unsigned(-1), True), ("blt", 0, False),
            ("bge", 0, True), ("bgt", 0, False), ("ble", 0, True),
        ],
    )
    def test_conditional(self, name, value, taken):
        assert run(name, (value,)) is taken

    def test_fp_branches(self):
        assert run("fbeq", (0.0,)) is True
        assert run("fbne", (0.5,)) is True

    def test_unconditional(self):
        op = opcode_by_name("br")
        assert not op.conditional
        assert op.semantics((), 0) is True


class TestMetadata:
    def test_latencies_follow_categories(self):
        for op in all_opcodes():
            if op.name == "divt":
                assert op.latency == 15
            elif op.name == "sqrtt":
                assert op.latency == 18
            else:
                assert op.latency == CATEGORY_LATENCY[op.category]

    def test_memory_flags(self):
        assert opcode_by_name("ldq").is_load
        assert opcode_by_name("stq").is_store
        assert opcode_by_name("ldq").is_mem and opcode_by_name("stq").is_mem
        assert not opcode_by_name("addq").is_mem

    def test_encoding_formats(self):
        assert opcode_by_name("stq").encoding_format is EncodingFormat.ZERO_DEST
        assert opcode_by_name("bne").encoding_format is EncodingFormat.ZERO_DEST
        assert opcode_by_name("lda").encoding_format is EncodingFormat.ONE_REG
        assert opcode_by_name("addq").encoding_format is EncodingFormat.TWO_REG

    def test_unknown_opcode_raises(self):
        with pytest.raises(KeyError):
            opcode_by_name("frobnicate")

    def test_no_duplicate_names(self):
        names = [op.name for op in all_opcodes()]
        assert len(names) == len(set(names))

    def test_src_fp_signature_lengths(self):
        for op in all_opcodes():
            assert len(op.srcs_fp) == op.num_srcs

    def test_store_reads_value_then_base(self):
        sts = opcode_by_name("sts")
        assert sts.srcs_fp == (True, False)

    def test_category_coverage(self):
        present = {op.category for op in all_opcodes()}
        assert OpCategory.LOAD in present
        assert OpCategory.STORE in present
        assert OpCategory.BRANCH in present
        assert OpCategory.FDIV in present
