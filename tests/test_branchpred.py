"""Unit tests for branch predictors."""

import pytest

from repro.uarch.branchpred import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    PerceptronPredictor,
    PerfectPredictor,
    make_predictor,
)


def accuracy(predictor, stream):
    correct = 0
    for pc, taken in stream:
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct / len(stream)


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("perfect", PerfectPredictor),
            ("perceptron", PerceptronPredictor),
            ("bimodal", BimodalPredictor),
            ("taken", AlwaysTakenPredictor),
        ],
    )
    def test_kinds(self, kind, cls):
        assert isinstance(make_predictor(kind), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("psychic")


class TestBimodal:
    def test_learns_biased_branch(self):
        stream = [(0x1000, True)] * 100
        assert accuracy(BimodalPredictor(), stream) > 0.95

    def test_hysteresis_tolerates_single_flip(self):
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.predict(0x1000)
            predictor.update(0x1000, True)
        predictor.update(0x1000, False)  # one not-taken
        assert predictor.predict(0x1000) is True

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=1000)


class TestPerceptron:
    def test_paper_configuration(self):
        predictor = PerceptronPredictor()
        assert predictor.entries == 512
        assert predictor.history_bits == 64
        assert predictor.theta == int(1.93 * 64 + 14)

    def test_learns_always_taken(self):
        stream = [(0x2000, True)] * 200
        assert accuracy(PerceptronPredictor(), stream) > 0.95

    def test_learns_periodic_pattern(self):
        # T T T N repeating: bimodal cannot exceed ~75%; a history-based
        # perceptron learns it nearly perfectly after warm-up.
        pattern = [True, True, True, False] * 250
        stream = [(0x3000, taken) for taken in pattern]
        perceptron_accuracy = accuracy(PerceptronPredictor(), stream)
        assert perceptron_accuracy > 0.9

    def test_periodic_beats_bimodal(self):
        pattern = [True, True, False] * 300
        stream = [(0x3000, taken) for taken in pattern]
        assert accuracy(PerceptronPredictor(), stream) > accuracy(
            BimodalPredictor(), stream
        )

    def test_weights_saturate(self):
        predictor = PerceptronPredictor()
        for _ in range(10_000):
            predictor.predict(0x100)
            predictor.update(0x100, True)
        assert int(predictor.weights.max()) <= 127
        assert int(predictor.weights.min()) >= -128

    def test_history_tracks_outcomes(self):
        predictor = PerceptronPredictor()
        predictor.predict(0x10)
        predictor.update(0x10, True)
        predictor.predict(0x10)
        predictor.update(0x10, False)
        assert predictor.history[0] == -1
        assert predictor.history[1] == 1


class TestPerfect:
    def test_flag(self):
        assert PerfectPredictor.is_perfect
        assert not PerceptronPredictor.is_perfect
