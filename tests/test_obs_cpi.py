"""CPI stall attribution (repro.obs.cpi / Observer accounting).

Pins the two properties the observability layer stands on:

* **Accounting identity** — with the observer attached, the CPI-stack
  components sum to the simulated cycle count exactly (exact mode) or
  within rounding (sampled mode), and ``base`` accounts for exactly one
  retirement slot per instruction.
* **Non-interference** — attaching the observer never changes a single
  architectural counter: the traced run is bit-identical to the plain one.

Plus the satellite diagnostics: ``SimulationHang`` carries a
stall-attribution snapshot, and ``WInst.__repr__`` shows the lifecycle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.obs import STALL_CAUSES, Observer
from repro.sim.config import (
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
)
from repro.sim.core import SimulationHang
from repro.sim.run import build_core, simulate
from repro.sim.sampling import SamplingConfig

BENCHMARKS = ("gcc", "mcf")

CORES = {
    "ooo": (ooo_config(8), False),
    "inorder": (inorder_config(8), False),
    "depsteer": (depsteer_config(8), False),
    "braid": (braid_config(8), True),
}


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        benchmarks=BENCHMARKS,
        max_instructions=20_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


def fingerprint(result):
    """Every architectural counter a run produces (observability excluded)."""
    extra = {
        key: value
        for key, value in result.extra.items()
        if not key.startswith("trace_")
    }
    return (
        result.cycles,
        result.instructions,
        result.issued,
        dataclasses.asdict(result.stalls),
        sorted(extra.items()),
    )


class TestExactAccounting:
    @pytest.mark.parametrize("kind", list(CORES))
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_stack_sums_to_cycles_exactly(self, ctx, kind, bench):
        config, braided = CORES[kind]
        workload = ctx.workload(bench, braided=braided)
        observe = Observer(cpi=True)
        result = simulate(workload, config, observe=observe)
        assert result.cpi_stack is not None
        assert set(result.cpi_stack) == set(STALL_CAUSES)
        # Slot fractions are k/width with width a power of two, so the
        # accumulation is exact in binary floating point: == not approx.
        assert sum(result.cpi_stack.values()) == result.cycles
        # base counts used retirement slots: one per retired instruction.
        assert (
            result.cpi_stack["base"] * config.issue_width
            == result.instructions
        )
        assert all(value >= 0 for value in result.cpi_stack.values())

    @pytest.mark.parametrize("kind", list(CORES))
    def test_observer_never_changes_the_run(self, ctx, kind):
        config, braided = CORES[kind]
        workload = ctx.workload("gcc", braided=braided)
        plain = simulate(workload, config)
        observed = simulate(
            workload, config,
            observe=Observer(trace=True, cpi=True, metrics=True),
        )
        assert fingerprint(observed) == fingerprint(plain)
        assert plain.cpi_stack is None
        assert plain.metrics is None


class TestSampledAccounting:
    @pytest.fixture(scope="class")
    def sampled_ctx(self):
        return ExperimentContext(
            benchmarks=("gcc",),
            scale=12,
            jobs=1,
            cache=ArtifactCache(enabled=False),
        )

    @pytest.mark.parametrize("kind", ("ooo", "braid"))
    def test_scaled_stack_matches_estimated_cycles(self, sampled_ctx, kind):
        config, braided = CORES[kind]
        workload = sampled_ctx.workload("gcc", braided=braided)
        sampling = SamplingConfig(stride=4)
        observe = Observer(cpi=True)
        result = simulate(
            workload, config, sampling=sampling, observe=observe
        )
        assert result.sampled, "trace too short to engage the sample plan"
        total = sum(result.cpi_stack.values())
        # Measured-window slots are scaled to the cycle estimate; only
        # float rounding separates the two.
        assert total == pytest.approx(result.cycles, abs=1.0)

    def test_sampled_run_itself_is_unchanged(self, sampled_ctx):
        config, braided = CORES["ooo"]
        workload = sampled_ctx.workload("gcc", braided=braided)
        sampling = SamplingConfig(stride=4)
        plain = simulate(workload, config, sampling=sampling)
        observed = simulate(
            workload, config, sampling=sampling, observe=Observer(cpi=True)
        )
        assert fingerprint(observed) == fingerprint(plain)


class TestHangDiagnostics:
    def test_hang_carries_stall_attribution_snapshot(self, ctx):
        config = replace(inorder_config(), max_idle_cycles=500)
        core = build_core(ctx.workload("gcc"), config)
        core.issue_stage = lambda cycle: None  # wedge: nothing ever issues
        with pytest.raises(SimulationHang) as excinfo:
            core.run()
        hang = excinfo.value
        assert hang.stall_cause in STALL_CAUSES
        assert hang.stall_snapshot == {hang.stall_cause: hang.idle_cycles}
        message = str(hang)
        assert f"waiting on {hang.stall_cause}" in message
        # The pre-existing diagnostic content must survive the new format.
        for needle in ("no retirement", "rob=", "ROB head"):
            assert needle in message


class TestWInstRepr:
    def test_repr_shows_lifecycle(self, ctx):
        config, braided = CORES["ooo"]
        workload = ctx.workload("gcc", braided=braided)
        observe = Observer(trace=True, cpi=False, trace_capacity=64)
        simulate(workload, config, observe=observe)
        records = observe.trace_records()
        assert records
        winst = records[-1]
        text = repr(winst)
        assert f"seq={winst.seq}" in text
        assert winst.dyn.inst.opcode.name in text
        assert f"f={winst.fetch_cycle}" in text
        assert f"i={winst.issue_cycle}" in text
        assert f"r={winst.retire_cycle}" in text

    def test_repr_marks_unreached_stages(self, ctx):
        from repro.sim.core import WInst

        workload = ctx.workload("gcc")
        winst = WInst(
            workload.trace[0], workload.decode()[0],
            fetch_cycle=3, dispatch_ready=3, mispredicted=False,
        )
        text = repr(winst)
        assert "d=-" in text and "i=-" in text and "r=-" in text
