"""Interval-sampled timing simulation: accuracy, determinism, fallbacks.

The sampler is an estimator, so these tests pin down its contract rather
than exact cycle counts:

* the sampled IPC stays within the documented error budget of the exact
  IPC on a long trace (cheap configuration of the bench setup);
* a fixed :class:`SamplingConfig` is bit-deterministic;
* traces too short to sample fall back to exact simulation, flagged in
  ``extra`` — and exact mode itself is untouched by the sampling code;
* sample plans are structurally sound (ordered, disjoint, covering).
"""

from __future__ import annotations

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.sim.config import braid_config, ooo_config
from repro.sim.run import simulate
from repro.sim.sampling import (
    MIN_SAMPLED_INTERVALS,
    SamplingConfig,
    detect_anchors,
    plan_windows,
)

#: Cheap shrink of the bench configuration (scale 64, stride 16): enough
#: outer iterations that anchored sampling engages, small enough for CI.
SCALE = 12.0
SAMPLING = SamplingConfig(stride=4)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        benchmarks=("gcc", "swim"),
        scale=SCALE,
        max_instructions=500_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


class TestConfig:
    def test_spec_round_trip(self):
        config = SamplingConfig(interval=300, stride=7, warmup=128, seed=3)
        assert SamplingConfig.parse(config.spec()) == config

    def test_parse_default_aliases(self):
        assert SamplingConfig.parse("default") == SamplingConfig()
        assert SamplingConfig.parse("1") == SamplingConfig()

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            SamplingConfig.parse("stride=fast")
        with pytest.raises(ValueError):
            SamplingConfig.parse("cadence=5")
        with pytest.raises(ValueError):
            SamplingConfig.parse("stride=0")

    def test_cache_token_distinguishes_configs(self):
        assert (
            SamplingConfig(stride=4).cache_token()
            != SamplingConfig(stride=8).cache_token()
        )


class TestPlan:
    def test_anchored_plan_structure(self, ctx):
        workload = ctx.workload("gcc")
        assert detect_anchors(workload.trace) is not None
        plan = plan_windows(workload.trace, SAMPLING)
        assert plan is not None
        total = len(workload.trace)
        assert len(plan.chosen) >= MIN_SAMPLED_INTERVALS
        starts = [start for start, _ in plan.units]
        assert starts == sorted(starts)
        for start, end in plan.units:
            assert 0 <= start < end <= total
        assert len(plan.detail_starts) == len(plan.chosen)
        for i, index in enumerate(plan.chosen):
            detail = plan.detail_starts[i]
            measure_start, measure_end = plan.units[index]
            assert detail <= measure_start < measure_end

    def test_lattice_fallback_without_anchors(self):
        class Straight:
            def __init__(self, block):
                self.block = block

        trace = [Straight(block) for block in range(40_000)]
        assert detect_anchors(trace) is None
        plan = plan_windows(trace, SamplingConfig())
        assert plan is not None and len(plan.chosen) >= MIN_SAMPLED_INTERVALS

    def test_short_trace_has_no_plan(self, ctx):
        workload = ctx.workload("gcc")
        assert plan_windows(workload.trace[:2_000], SamplingConfig()) is None


class TestEstimate:
    @pytest.mark.parametrize("name,config,braided", [
        ("gcc", ooo_config(8), False),
        ("gcc", braid_config(8), True),
        ("swim", ooo_config(8), False),
    ])
    def test_error_within_budget(self, ctx, name, config, braided):
        workload = ctx.workload(name, braided=braided)
        exact = simulate(workload, config)
        sampled = simulate(workload, config, sampling=SAMPLING)
        assert sampled.sampled and not sampled.extra.get("sample_fallback_exact")
        error = abs(sampled.ipc - exact.ipc) / exact.ipc
        assert error <= 0.02, (
            f"sampled IPC off by {100 * error:.2f}% on {name} "
            f"(exact {exact.ipc:.4f}, sampled {sampled.ipc:.4f})"
        )
        # Warmup overhead dominates at this small test scale; the bench-scale
        # detail fraction (~0.16, i.e. the >=4x speedup) lives in bench_speed.
        assert sampled.extra["sample_detail_fraction"] < 0.8

    def test_deterministic(self, ctx):
        workload = ctx.workload("gcc")
        a = simulate(workload, ooo_config(8), sampling=SAMPLING)
        b = simulate(workload, ooo_config(8), sampling=SAMPLING)
        assert a.cycles == b.cycles
        assert a.ipc_stderr == b.ipc_stderr
        assert a.extra == b.extra

    def test_stderr_populated(self, ctx):
        workload = ctx.workload("gcc")
        sampled = simulate(workload, ooo_config(8), sampling=SAMPLING)
        assert sampled.ipc_stderr >= 0.0
        assert sampled.ipc_ci95 == pytest.approx(1.96 * sampled.ipc_stderr)

    def test_exact_mode_untouched_by_sampling_import(self, ctx):
        workload = ctx.workload("swim")
        assert (
            simulate(workload, ooo_config(8)).cycles
            == simulate(workload, ooo_config(8), sampling=None).cycles
        )

    def test_short_trace_falls_back_to_exact(self):
        ctx = ExperimentContext(
            benchmarks=("gcc",), scale=0.5, jobs=1,
            cache=ArtifactCache(enabled=False),
        )
        workload = ctx.workload("gcc")
        exact = simulate(workload, ooo_config(8))
        sampled = simulate(workload, ooo_config(8), sampling=SamplingConfig())
        assert sampled.extra.get("sample_fallback_exact") == 1.0
        assert sampled.cycles == exact.cycles
        assert sampled.ipc_stderr == 0.0
