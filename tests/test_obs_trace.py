"""Pipeline trace exports (repro.obs.tracing) and the ``trace`` CLI.

The load-bearing check: the retirement stream recovered from either
export format matches the lockstep oracle's architectural stream — a
fresh :class:`~repro.sim.functional.FunctionalExecutor` replay of the
program — on two benchmarks across all four timing cores.  Plus the ring
buffer's bounded-memory contract, the Konata/Chrome format invariants,
the minimal Chrome schema validator, and the CLI entry point.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.obs import (
    Observer,
    RingLog,
    chrome_schema_errors,
    export_chrome,
    export_konata,
    issue_stall_cause,
)
from repro.sim.config import (
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
)
from repro.sim.functional import FunctionalExecutor
from repro.sim.run import simulate

BENCHMARKS = ("gcc", "mcf")

CORES = {
    "ooo": (ooo_config(8), False),
    "inorder": (inorder_config(8), False),
    "depsteer": (depsteer_config(8), False),
    "braid": (braid_config(8), True),
}


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        benchmarks=BENCHMARKS,
        max_instructions=20_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


def traced_run(ctx, benchmark, kind):
    config, braided = CORES[kind]
    workload = ctx.workload(benchmark, braided=braided)
    observe = Observer(
        trace=True, cpi=False, trace_capacity=len(workload.trace) + 1,
    )
    result = simulate(workload, config, observe=observe)
    return workload, result, observe.trace_records()


def oracle_stream(workload):
    """Architectural retirement order: a fresh functional replay."""
    executor = FunctionalExecutor(
        workload.program, max_instructions=len(workload.trace)
    )
    return [dyn.seq for dyn in executor.trace()]


class TestRetirementOrder:
    @pytest.mark.parametrize("kind", list(CORES))
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_konata_matches_oracle(self, ctx, bench, kind):
        workload, _result, records = traced_run(ctx, bench, kind)
        text = export_konata(records)
        lines = text.splitlines()
        assert lines[0] == "Kanata\t0004"
        # R lines: R <file id> <retire id> 0, in file order = record order.
        retire_of = {}
        for line in lines:
            if line.startswith("R\t"):
                _, file_id, retire_id, _ = line.split("\t")
                retire_of[int(file_id)] = int(retire_id)
        assert len(retire_of) == len(records)
        stream = [
            records[file_id].seq
            for file_id, _ in sorted(
                retire_of.items(), key=lambda item: item[1]
            )
        ]
        assert stream == oracle_stream(workload)

    @pytest.mark.parametrize("kind", list(CORES))
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_chrome_matches_oracle(self, ctx, bench, kind):
        workload, _result, records = traced_run(ctx, bench, kind)
        doc = export_chrome(records, benchmark=bench, machine=kind)
        assert chrome_schema_errors(doc) == []
        position = {}
        for event in doc["traceEvents"]:
            position[event["args"]["seq"]] = event["args"]["retire_index"]
        stream = [
            seq for seq, _ in sorted(position.items(), key=lambda kv: kv[1])
        ]
        assert stream == oracle_stream(workload)


class TestExportFormats:
    def test_chrome_round_trips_through_json(self, ctx):
        _workload, _result, records = traced_run(ctx, "gcc", "braid")
        doc = export_chrome(records, benchmark="gcc", machine="braid")
        reloaded = json.loads(json.dumps(doc))
        assert chrome_schema_errors(reloaded) == []
        assert reloaded["otherData"]["instructions"] == len(records)
        # Four stage slices per retired instruction, all with defined spans.
        assert len(reloaded["traceEvents"]) == 4 * len(records)

    def test_konata_clock_only_advances(self, ctx):
        _workload, _result, records = traced_run(ctx, "gcc", "ooo")
        deltas = [
            int(line.split("\t")[1])
            for line in export_konata(records).splitlines()
            if line.startswith("C\t")
        ]
        assert deltas and all(delta > 0 for delta in deltas)

    def test_schema_validator_rejects_malformed_documents(self):
        assert chrome_schema_errors([]) != []
        assert chrome_schema_errors({}) != []
        good = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}
        ]}
        assert chrome_schema_errors(good) == []
        for corruption in (
            {"name": ""},
            {"ph": "Z"},
            {"ts": -1},
            {"dur": -2},
            {"tid": "lane"},
        ):
            event = dict(good["traceEvents"][0])
            event.update(corruption)
            assert chrome_schema_errors({"traceEvents": [event]}) != []

    def test_issue_stall_cause_taxonomy(self, ctx):
        _workload, _result, records = traced_run(ctx, "mcf", "inorder")
        causes = {issue_stall_cause(w) for w in records}
        assert causes <= {"none", "data_dependence", "structural"}
        assert "none" in causes


class TestRingLog:
    def test_ring_bounds_memory_and_counts_drops(self, ctx):
        config, braided = CORES["ooo"]
        workload = ctx.workload("gcc", braided=braided)
        observe = Observer(trace=True, cpi=False, trace_capacity=100)
        result = simulate(workload, config, observe=observe)
        assert len(observe.ring) == 100
        assert observe.ring.dropped == result.instructions - 100
        assert result.extra["trace_dropped"] == result.instructions - 100
        # The ring keeps the newest instructions.
        newest = [w.seq for w in observe.trace_records()]
        assert newest == list(
            range(result.instructions - 100, result.instructions)
        )

    def test_ring_is_iterable_and_sized(self):
        ring = RingLog(capacity=2)
        for item in ("a", "b", "c"):
            ring.append(item)
        assert list(ring) == ["b", "c"]
        assert len(ring) == 2
        assert ring.dropped == 1


class TestTraceCli:
    def test_chrome_export_via_cli(self, tmp_path):
        from repro.harness.__main__ import main

        out = tmp_path / "gcc.trace.json"
        code = main([
            "trace", "--bench", "gcc", "--core", "braid",
            "--format", "chrome", "--out", str(out),
            "--scale", "0.5", "--no-cache",
        ])
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert chrome_schema_errors(doc) == []
        assert doc["traceEvents"]

    def test_konata_export_via_cli(self, tmp_path):
        from repro.harness.__main__ import main

        out = tmp_path / "gcc.konata"
        code = main([
            "trace", "--bench", "gcc", "--core", "ooo",
            "--format", "konata", "--out", str(out),
            "--scale", "0.5", "--no-cache",
        ])
        assert code == 0
        text = out.read_text(encoding="utf-8")
        assert text.startswith("Kanata\t0004\n")
        assert "\nR\t" in text
