"""Unit and integration tests for the braid binary translator."""

import pytest

from repro.core.translator import translate_block, translate_program
from repro.dataflow.liveness import LivenessAnalysis
from repro.dataflow.memdep import memory_order_edges
from repro.isa import assemble
from repro.sim import observably_equivalent
from repro.workloads import KERNEL_NAMES, kernel


def translate(source: str):
    program = assemble(source)
    return program, translate_program(program)


class TestStructure:
    def test_braids_are_contiguous(self, gcc_life_compiled):
        for block in gcc_life_compiled.translated.blocks:
            seen = []
            for inst in block.instructions:
                if inst.annot.start:
                    seen.append(inst.annot.braid_id)
            # braid ids appear in emission order, each exactly once
            assert seen == sorted(set(seen))
            current = None
            for inst in block.instructions:
                if inst.annot.start:
                    current = inst.annot.braid_id
                assert inst.annot.braid_id == current

    def test_first_instruction_of_each_block_starts_a_braid(
        self, gcc_life_compiled
    ):
        for block in gcc_life_compiled.translated.blocks:
            if block.instructions:
                assert block.instructions[0].annot.start

    def test_branch_remains_terminal(self, gcc_life_compiled):
        for original, translated in zip(
            gcc_life_compiled.original.blocks,
            gcc_life_compiled.translated.blocks,
        ):
            had_branch = original.terminator is not None
            has_branch = translated.terminator is not None
            assert had_branch == has_branch
            for inst in translated.instructions[:-1]:
                assert not inst.is_branch

    def test_instruction_multiset_preserved(self, gcc_life_compiled):
        for original, translated in zip(
            gcc_life_compiled.original.blocks,
            gcc_life_compiled.translated.blocks,
        ):
            before = sorted(i.opcode.name for i in original.instructions)
            after = sorted(i.opcode.name for i in translated.instructions)
            assert before == after

    def test_branch_targets_unchanged(self, gcc_life_compiled):
        for original, translated in zip(
            gcc_life_compiled.original.blocks,
            gcc_life_compiled.translated.blocks,
        ):
            if original.terminator is not None:
                assert translated.terminator.target == original.terminator.target

    def test_memory_order_preserved(self, gcc_life_compiled):
        # Translating again must yield no memory edges violated; the
        # translator itself asserts this, so just re-run it.
        for block in gcc_life_compiled.translated.blocks:
            edges = memory_order_edges(block)
            for edge in edges:
                assert edge.earlier < edge.later


class TestScheduling:
    def test_branch_dependent_on_big_braid_splits_it(self):
        # lda writes r4 which earlier instructions read; branch braid must
        # be last: forces the paper-style split with the branch standing
        # alone (see Figure 2 discussion in DESIGN.md).
        program, (translated, report) = translate(
            """
            .block L
                addq r1, r4, r8
                ldl r9, 0(r8)
                lda r4, 4(r4)
                bne r9, L
            """
        )
        assert report.splits.ordering_splits >= 1
        block = translated.blocks[0]
        assert block.instructions[-1].is_branch
        assert block.instructions[-1].annot.start  # single-instruction braid

    def test_store_load_pair_not_reordered(self):
        program, (translated, _) = translate(
            """
            .block L
                stq r1, 0(r2)
                addq r5, r6, r7
                ldq r3, 0(r4)
                stq r7, 8(r2)
            """
        )
        names = [i.opcode.name for i in translated.blocks[0].instructions]
        assert names.index("stq") < names.index("ldq")

    def test_war_respected_across_braids(self):
        # Braid B writes r1 which braid A reads: A must stay first.
        program, (translated, _) = translate(
            """
            .block L
                addq r1, r2, r3
                stq r3, 0(r9)
                addq r4, r5, r1
                stq r1, 8(r9)
            """
        )
        insts = translated.blocks[0].instructions
        from repro.isa.registers import int_reg

        read_pos = next(
            i for i, inst in enumerate(insts)
            if inst.opcode.name == "addq"
            and inst.srcs == (int_reg(1), int_reg(2))
        )
        write_pos = next(
            i for i, inst in enumerate(insts)
            if inst.opcode.name == "addq"
            and inst.srcs == (int_reg(4), int_reg(5))
        )
        assert read_pos < write_pos


class TestEquivalence:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_kernels_observably_equivalent(self, name):
        program = kernel(name)
        translated, _ = translate_program(program)
        assert observably_equivalent(program, translated)

    def test_internal_limit_variants_equivalent(self, gcc_life):
        for limit in (2, 4, 8):
            translated, report = translate_program(
                gcc_life, internal_limit=limit
            )
            assert observably_equivalent(gcc_life, translated)

    def test_report_counts_braids(self, gcc_life_compiled):
        assert gcc_life_compiled.total_braids == sum(
            len(t.braids) for t in gcc_life_compiled.report.blocks
        )
        assert gcc_life_compiled.total_braids > 0

    def test_translate_block_spans(self, gcc_life):
        liveness = LivenessAnalysis(gcc_life)
        block = gcc_life.block_by_label("LOOP")
        translation = translate_block(block, liveness)
        total = 0
        for (start, end), braid in zip(
            translation.new_spans, translation.braids
        ):
            assert end - start == braid.size
            total += braid.size
        assert total == len(block.instructions)
