"""Unit tests for the assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.registers import Space, fp_reg, int_reg


class TestBasics:
    def test_minimal_program(self):
        program = assemble("nop")
        assert program.static_size == 1
        assert program.blocks[0].instructions[0].is_nop

    def test_program_directive(self):
        program = assemble(".program hello\nnop")
        assert program.name == "hello"

    def test_name_argument_overridden_by_directive(self):
        program = assemble(".program inner\nnop", name="outer")
        assert program.name == "inner"

    def test_comments_ignored(self):
        program = assemble("nop ; trailing comment\n; full line comment\n")
        assert program.static_size == 1

    def test_entry_directive(self):
        program = assemble(
            ".entry B\n.block A\n nop\n.block B\n nop\n"
        )
        assert program.entry == 1


class TestOperandForms:
    def test_three_register_alu(self):
        inst = assemble("addq r1, r2, r3").blocks[0].instructions[0]
        assert inst.opcode.name == "addq"
        assert inst.srcs == (int_reg(1), int_reg(2))
        assert inst.dest is int_reg(3)

    def test_immediate_second_operand_rewrites_opcode(self):
        inst = assemble("addq r1, #4, r3").blocks[0].instructions[0]
        assert inst.opcode.name == "addqi"
        assert inst.srcs == (int_reg(1),)
        assert inst.imm == 4

    def test_bare_literal_without_hash(self):
        inst = assemble("subq r1, 10, r3").blocks[0].instructions[0]
        assert inst.opcode.name == "subqi"
        assert inst.imm == 10

    def test_hex_and_negative_immediates(self):
        inst = assemble("addq r1, #0x10, r3").blocks[0].instructions[0]
        assert inst.imm == 16
        inst = assemble("addq r1, #-3, r3").blocks[0].instructions[0]
        assert inst.imm == -3

    def test_load(self):
        inst = assemble("ldl r4, 8(r2)").blocks[0].instructions[0]
        assert inst.is_load
        assert inst.dest is int_reg(4)
        assert inst.base_reg is int_reg(2)
        assert inst.imm == 8

    def test_store(self):
        inst = assemble("stq r4, -16(r2)").blocks[0].instructions[0]
        assert inst.is_store
        assert inst.srcs == (int_reg(4), int_reg(2))
        assert inst.imm == -16

    def test_lda_uses_memory_syntax(self):
        inst = assemble("lda r4, 4(r4)").blocks[0].instructions[0]
        assert inst.opcode.name == "lda"
        assert inst.srcs == (int_reg(4),)
        assert inst.imm == 4

    def test_fp_load(self):
        inst = assemble("ldt f2, 0(r9)").blocks[0].instructions[0]
        assert inst.dest is fp_reg(2)
        assert inst.base_reg is int_reg(9)

    def test_cmov_register_form_reads_old_dest(self):
        inst = assemble("cmovne r1, r2, r3").blocks[0].instructions[0]
        assert inst.srcs == (int_reg(1), int_reg(2), int_reg(3))
        assert inst.dest is int_reg(3)

    def test_cmov_immediate_form(self):
        inst = assemble("cmovne r1, #1, r3").blocks[0].instructions[0]
        assert inst.opcode.name == "cmovnei"
        assert inst.srcs == (int_reg(1), int_reg(3))
        assert inst.imm == 1


class TestControlFlow:
    SOURCE = """
    .block TOP
        addq r1, r2, r3
        bne r3, BOTTOM
    .block MID
        br TOP
    .block BOTTOM
        nop
    """

    def test_branch_targets_resolve(self):
        program = assemble(self.SOURCE)
        branch = program.blocks[0].terminator
        assert branch.target == program.block_by_label("BOTTOM").index
        jump = program.blocks[1].terminator
        assert jump.target == 0

    def test_undefined_label(self):
        with pytest.raises(AssemblerError, match="undefined block label"):
            assemble("bne r1, NOWHERE")

    def test_forward_and_backward_references(self):
        program = assemble(self.SOURCE)
        program.validate()


class TestErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("frob r1, r2, r3", "unknown opcode"),
            ("ldl r1, r2", "malformed memory operand"),
            ("addq r1, r2", "malformed register|addq"),
            ("bne r1", "expected"),
            (".frobnicate x", "unknown directive"),
            ("", "no instructions"),
            ("stq r1, bogus", "malformed memory operand"),
        ],
    )
    def test_malformed_input(self, source, match):
        with pytest.raises(AssemblerError, match=match):
            assemble(source)

    def test_error_carries_line_number(self):
        try:
            assemble("nop\nnop\nfrob r1")
        except AssemblerError as exc:
            assert exc.line_number == 3
        else:  # pragma: no cover
            pytest.fail("expected AssemblerError")

    def test_branch_mid_block_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".block A\n bne r1, A\n nop\n")


class TestRoundTrip:
    def test_kernels_assemble_and_validate(self):
        from repro.workloads import KERNEL_NAMES, kernel

        for name in KERNEL_NAMES:
            program = kernel(name)
            program.validate()
            assert program.static_size > 0

    def test_unannotated_instructions_are_external(self):
        program = assemble("addq r1, r2, r3")
        inst = program.blocks[0].instructions[0]
        assert inst.annot.src_space(0) is Space.EXTERNAL
        assert inst.annot.dest_external
