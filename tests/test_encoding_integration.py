"""Whole-program encoding tests: braided binaries survive the bit format."""

import pytest

from repro.core import braidify
from repro.isa import decode_block, encode_block
from repro.isa.registers import Space
from repro.workloads import KERNEL_NAMES, build_program, kernel


def roundtrip(block):
    return decode_block(encode_block(block.instructions))


class TestBraidedKernels:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_kernel_blocks_round_trip(self, name):
        compilation = braidify(kernel(name))
        for block in compilation.translated.blocks:
            decoded = roundtrip(block)
            for original, restored in zip(block.instructions, decoded):
                assert restored.opcode is original.opcode
                assert restored.dest == original.dest
                assert restored.srcs == original.srcs
                assert restored.annot.start == original.annot.start
                assert (
                    restored.annot.dest_internal == original.annot.dest_internal
                )
                for position in range(len(original.srcs)):
                    assert restored.annot.src_space(
                        position
                    ) is original.annot.src_space(position)

    def test_s_bits_delimit_same_braid_count(self):
        compilation = braidify(kernel("gcc_life"))
        for translation, block in zip(
            compilation.report.blocks, compilation.translated.blocks
        ):
            decoded = roundtrip(block)
            starts = sum(1 for inst in decoded if inst.annot.start)
            assert starts == len(translation.braids)


class TestBenchmarkBinaries:
    @pytest.mark.parametrize("name", ("gcc", "swim", "mcf"))
    def test_benchmark_encodes(self, name):
        compilation = braidify(build_program(name))
        for block in compilation.translated.blocks:
            decoded = roundtrip(block)
            assert len(decoded) == len(block.instructions)

    def test_internal_operands_marked_in_bits(self):
        compilation = braidify(build_program("gcc"))
        internal_sources = 0
        for block in compilation.translated.blocks:
            for inst in roundtrip(block):
                for position in range(len(inst.srcs)):
                    if inst.annot.src_space(position) is Space.INTERNAL:
                        internal_sources += 1
        assert internal_sources > 0

    def test_code_size_is_eight_bytes_per_instruction(self):
        program = build_program("gcc")
        words = encode_block(list(program.instructions()))
        assert len(words) == program.static_size
        assert all(0 <= word < (1 << 64) for word in words)
