"""Unit and property tests for the 64-bit braid instruction encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoding import IMM_MAX, IMM_MIN, EncodingError, decode, encode
from repro.isa.instruction import BraidAnnotation, Instruction
from repro.isa.opcodes import all_opcodes, opcode_by_name
from repro.isa.registers import Register, RegClass, Space, fp_reg, int_reg


def annotated(inst, **kwargs):
    return inst.with_annotation(BraidAnnotation(**kwargs))


class TestRoundTrip:
    def test_alu(self):
        inst = Instruction(
            opcode=opcode_by_name("addq"), dest=int_reg(3),
            srcs=(int_reg(1), int_reg(2)),
        )
        decoded = decode(encode(inst))
        assert decoded.opcode is inst.opcode
        assert decoded.dest is inst.dest
        assert decoded.srcs == inst.srcs

    def test_branch_target(self):
        inst = Instruction(
            opcode=opcode_by_name("bne"), srcs=(int_reg(9),), target=42
        )
        decoded = decode(encode(inst))
        assert decoded.is_branch
        assert decoded.target == 42

    def test_negative_immediate(self):
        inst = Instruction(
            opcode=opcode_by_name("ldq"), dest=int_reg(1),
            srcs=(int_reg(2),), imm=-64,
        )
        assert decode(encode(inst)).imm == -64

    def test_cmov_three_sources(self):
        inst = Instruction(
            opcode=opcode_by_name("cmovne"), dest=int_reg(3),
            srcs=(int_reg(1), int_reg(2), int_reg(3)),
        )
        assert decode(encode(inst)).srcs == inst.srcs

    def test_fp_register_banks_survive(self):
        inst = Instruction(
            opcode=opcode_by_name("addt"), dest=fp_reg(5),
            srcs=(fp_reg(1), fp_reg(2)),
        )
        decoded = decode(encode(inst))
        assert decoded.dest is fp_reg(5)
        assert all(s.rclass is RegClass.FP for s in decoded.srcs)


class TestBraidBits:
    def test_start_bit(self):
        inst = annotated(
            Instruction(opcode=opcode_by_name("nop")), start=True
        )
        assert decode(encode(inst)).annot.start

    def test_temporary_source_bits(self):
        inst = annotated(
            Instruction(
                opcode=opcode_by_name("addq"), dest=int_reg(3),
                srcs=(int_reg(1), int_reg(2)),
            ),
            src_spaces=(Space.INTERNAL, Space.EXTERNAL),
        )
        decoded = decode(encode(inst))
        assert decoded.annot.src_space(0) is Space.INTERNAL
        assert decoded.annot.src_space(1) is Space.EXTERNAL

    def test_internal_destination_bits(self):
        inst = annotated(
            Instruction(
                opcode=opcode_by_name("addq"), dest=int_reg(3),
                srcs=(int_reg(1), int_reg(2)),
            ),
            dest_internal=True,
            dest_external=False,
        )
        decoded = decode(encode(inst))
        assert decoded.annot.dest_internal
        assert not decoded.annot.dest_external

    def test_word_fits_in_64_bits(self):
        inst = annotated(
            Instruction(
                opcode=opcode_by_name("addq"), dest=int_reg(31),
                srcs=(int_reg(31), int_reg(31)), imm=0,
            ),
            start=True, dest_internal=True,
        )
        assert 0 <= encode(inst) < (1 << 64)


class TestErrors:
    def test_immediate_overflow(self):
        inst = Instruction(
            opcode=opcode_by_name("ldq"), dest=int_reg(1),
            srcs=(int_reg(2),), imm=IMM_MAX + 1,
        )
        with pytest.raises(EncodingError):
            encode(inst)

    def test_immediate_underflow(self):
        inst = Instruction(
            opcode=opcode_by_name("ldq"), dest=int_reg(1),
            srcs=(int_reg(2),), imm=IMM_MIN - 1,
        )
        with pytest.raises(EncodingError):
            encode(inst)

    def test_unknown_opcode_number(self):
        with pytest.raises(EncodingError):
            decode(0xFF << 55)


# ---------------------------------------------------------------------------
# Property-based round trip over the whole opcode space
# ---------------------------------------------------------------------------
_ENCODABLE = [op for op in all_opcodes()]


@st.composite
def instructions(draw):
    opcode = draw(st.sampled_from(_ENCODABLE))
    regs = []
    for fp in opcode.srcs_fp:
        index = draw(st.integers(0, 31))
        regs.append(fp_reg(index) if fp else int_reg(index))
    dest = None
    if opcode.has_dest:
        index = draw(st.integers(0, 31))
        dest = fp_reg(index) if opcode.dest_fp else int_reg(index)
    imm = draw(st.integers(IMM_MIN, IMM_MAX))
    target = None
    if opcode.is_branch:
        target = draw(st.integers(0, 1000))
        imm = 0
    spaces = tuple(
        draw(st.sampled_from([Space.EXTERNAL, Space.INTERNAL]))
        for _ in range(opcode.num_srcs)
    )
    annot = BraidAnnotation(
        start=draw(st.booleans()),
        src_spaces=spaces,
        dest_internal=draw(st.booleans()) if opcode.has_dest else False,
        dest_external=opcode.has_dest,
    )
    return Instruction(
        opcode=opcode, dest=dest, srcs=tuple(regs), imm=imm, target=target,
        annot=annot,
    )


@settings(max_examples=300, deadline=None)
@given(instructions())
def test_encode_decode_round_trip(inst):
    decoded = decode(encode(inst))
    assert decoded.opcode is inst.opcode
    assert decoded.dest == inst.dest
    assert decoded.srcs == inst.srcs
    if inst.is_branch:
        assert decoded.target == inst.target
    else:
        assert decoded.imm == inst.imm
    assert decoded.annot.start == inst.annot.start
    for position in range(inst.opcode.num_srcs):
        assert decoded.annot.src_space(position) is inst.annot.src_space(position)
    if inst.opcode.has_dest:
        assert decoded.annot.dest_internal == inst.annot.dest_internal
