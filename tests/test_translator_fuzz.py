"""Adversarial translator fuzzing.

The generator-driven property tests cover realistic dataflow; this fuzzer
builds *hostile* programs instead: random straight-line blocks over a tiny
register pool, stuffed with WAR/WAW hazards, aliasing loads/stores, cmovs
(read-modify-write), dead writes, and zero-register operands — the patterns
most likely to break a reordering binary translator.

The program generator and the equivalence/annotation oracles live in the
reusable harness :mod:`repro.validate.fuzzing` (shared with
``python -m repro.harness validate``); this file drives the same harness
two ways — hypothesis picks the seeds here, and a fixed-seed campaign
reproduces the CI sweep deterministically.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import braidify
from repro.sim import observably_equivalent
from repro.validate.fuzzing import (
    annotation_defects,
    fuzz_translator,
    hostile_block,
    hostile_program,
)

_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Hypothesis drives the shared generator through its seed, so every
#: failure is reproducible as ``hostile_program(random.Random(seed))``.
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@_SETTINGS
@given(seeds)
def test_hostile_programs_translate_equivalently(seed):
    program = hostile_program(random.Random(seed))
    program.validate()
    compilation = braidify(program)
    assert observably_equivalent(
        program, compilation.translated, max_instructions=20_000
    )


@_SETTINGS
@given(seeds)
def test_hostile_programs_have_sound_annotations(seed):
    program = hostile_program(random.Random(seed))
    compilation = braidify(program)
    assert annotation_defects(compilation.translated) == []


@_SETTINGS
@given(seeds, st.sampled_from([1, 2, 4]))
def test_hostile_programs_with_tiny_internal_limits(seed, limit):
    program = hostile_program(random.Random(seed))
    compilation = braidify(program, internal_limit=limit)
    assert observably_equivalent(
        program, compilation.translated, max_instructions=20_000
    )


def test_hostile_blocks_are_hostile():
    """The generator really produces the hazard density it promises."""
    instructions = []
    rng = random.Random(0)
    for _ in range(50):
        instructions.extend(hostile_block(rng))
    dests = [inst.dest for inst in instructions if inst.dest is not None]
    # Tiny pool => heavy redefinition (WAW) by construction.
    assert len(set(dests)) <= 6
    assert len(dests) > 2 * len(set(dests))
    assert any(inst.is_load for inst in instructions)
    assert any(inst.is_store for inst in instructions)


def test_fixed_seed_campaign_matches_ci():
    """The acceptance-criterion campaign: 200 hostile programs, all clean."""
    report = fuzz_translator(samples=200, seed=0)
    assert report.passed
    assert report.samples == 200
    assert report.checks == 200
