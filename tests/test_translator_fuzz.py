"""Adversarial translator fuzzing.

The generator-driven property tests cover realistic dataflow; this fuzzer
builds *hostile* programs instead: random straight-line blocks over a tiny
register pool, stuffed with WAR/WAW hazards, aliasing loads/stores, cmovs
(read-modify-write), dead writes, and zero-register operands — the patterns
most likely to break a reordering binary translator.  Every sample must
braid-compile into an observably equivalent program with sound annotations.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import braidify
from repro.isa.instruction import Instruction
from repro.isa.opcodes import opcode_by_name
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import NUM_INTERNAL_REGS, int_reg
from repro.sim import observably_equivalent

# Tiny register pool: maximizes redefinition and anti-dependences.
_POOL = [1, 2, 3, 4, 5, 31]

_ALU = ("addq", "subq", "and", "xor", "cmpeq", "s8addq")
_CMOV = ("cmovne", "cmoveq")


@st.composite
def hostile_blocks(draw, min_size=2, max_size=14):
    size = draw(st.integers(min_size, max_size))
    instructions = []
    for _ in range(size):
        kind = draw(st.sampled_from(("alu", "alu", "alu", "cmov",
                                     "load", "store")))
        if kind == "alu":
            op = draw(st.sampled_from(_ALU))
            instructions.append(Instruction(
                opcode=opcode_by_name(op),
                dest=int_reg(draw(st.sampled_from(_POOL))),
                srcs=(
                    int_reg(draw(st.sampled_from(_POOL))),
                    int_reg(draw(st.sampled_from(_POOL))),
                ),
            ))
        elif kind == "cmov":
            op = draw(st.sampled_from(_CMOV))
            dest = int_reg(draw(st.sampled_from(_POOL)))
            instructions.append(Instruction(
                opcode=opcode_by_name(op),
                dest=dest,
                srcs=(
                    int_reg(draw(st.sampled_from(_POOL))),
                    int_reg(draw(st.sampled_from(_POOL))),
                    dest,
                ),
            ))
        elif kind == "load":
            instructions.append(Instruction(
                opcode=opcode_by_name("ldq"),
                dest=int_reg(draw(st.sampled_from(_POOL))),
                srcs=(int_reg(draw(st.sampled_from(_POOL))),),
                imm=8 * draw(st.integers(0, 3)),  # heavy aliasing
            ))
        else:
            instructions.append(Instruction(
                opcode=opcode_by_name("stq"),
                srcs=(
                    int_reg(draw(st.sampled_from(_POOL))),
                    int_reg(draw(st.sampled_from(_POOL))),
                ),
                imm=8 * draw(st.integers(0, 3)),
            ))
    return instructions


@st.composite
def hostile_programs(draw):
    """ENTRY -> LOOP (bounded, data-hostile) -> EXIT with a final store."""
    entry = BasicBlock(0, label="ENTRY")
    for position, pool_reg in enumerate(_POOL[:-1]):
        entry.instructions.append(Instruction(
            opcode=opcode_by_name("addqi"),
            dest=int_reg(pool_reg),
            srcs=(int_reg(31),),
            imm=0x8000 + 64 * position,
        ))
    # loop counter in r6 (outside the hostile pool, so the loop terminates)
    trips = draw(st.integers(1, 4))
    entry.instructions.append(Instruction(
        opcode=opcode_by_name("addqi"), dest=int_reg(6),
        srcs=(int_reg(31),), imm=trips,
    ))

    loop = BasicBlock(1, label="LOOP", instructions=list(draw(hostile_blocks())))
    loop.instructions.append(Instruction(
        opcode=opcode_by_name("subqi"), dest=int_reg(6),
        srcs=(int_reg(6),), imm=1,
    ))
    loop.instructions.append(Instruction(
        opcode=opcode_by_name("bne"), srcs=(int_reg(6),), target=1,
    ))

    exit_block = BasicBlock(2, label="EXIT")
    for position, pool_reg in enumerate(_POOL[:-1]):
        exit_block.instructions.append(Instruction(
            opcode=opcode_by_name("stq"),
            srcs=(int_reg(pool_reg), int_reg(31)),
            imm=0x100 + 8 * position,
        ))
    exit_block.instructions.append(
        Instruction(opcode=opcode_by_name("nop"))
    )
    return Program(name="hostile", blocks=[entry, loop, exit_block])


_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(hostile_programs())
def test_hostile_programs_translate_equivalently(program):
    program.validate()
    compilation = braidify(program)
    assert observably_equivalent(
        program, compilation.translated, max_instructions=20_000
    )


@_SETTINGS
@given(hostile_programs())
def test_hostile_programs_have_sound_annotations(program):
    compilation = braidify(program)
    for block in compilation.translated.blocks:
        if block.instructions:
            assert block.instructions[0].annot.start
        for inst in block.instructions[:-1]:
            assert not inst.is_branch  # branch stays terminal
        for inst in block.instructions:
            if inst.annot.dest_internal:
                assert inst.dest.index < NUM_INTERNAL_REGS
            assert not (inst.annot.dest_internal and inst.annot.dest_external)


@_SETTINGS
@given(hostile_programs(), st.sampled_from([1, 2, 4]))
def test_hostile_programs_with_tiny_internal_limits(program, limit):
    compilation = braidify(program, internal_limit=limit)
    assert observably_equivalent(
        program, compilation.translated, max_instructions=20_000
    )
