"""Tests for the pipeline visualizer and ASCII figure rendering."""

import pytest

from repro.harness.figures import render_bars, render_series
from repro.harness.reporting import ExperimentResult
from repro.isa import assemble
from repro.sim import ooo_config, prepare_workload
from repro.sim.pipeview import PipeviewError, render_pipeview, stage_latencies
from repro.sim.run import build_core


@pytest.fixture(scope="module")
def traced_core():
    program = assemble(
        """
        addq r31, #5, r1
        mulq r1, r1, r2
        addq r2, r2, r3
        stq r3, 0(r1)
        """
    )
    core = build_core(prepare_workload(program, perfect=True), ooo_config(8))
    core.trace_log = []
    core.run()
    return core


class TestPipeview:
    def test_renders_every_instruction(self, traced_core):
        text = render_pipeview(traced_core.trace_log)
        assert text.count("\n") == len(traced_core.trace_log)
        assert "mulq" in text and "stq" in text

    def test_stage_marks_in_order(self, traced_core):
        for line in render_pipeview(traced_core.trace_log).splitlines()[1:]:
            lane = line.split("|")[1]
            positions = {
                mark: lane.index(mark) for mark in "fdicr" if mark in lane
            }
            ordered = [positions[m] for m in "fdicr" if m in positions]
            assert ordered == sorted(ordered)

    def test_execute_shading_for_long_ops(self, traced_core):
        lines = render_pipeview(traced_core.trace_log).splitlines()
        mul_line = next(line for line in lines if "mulq" in line)
        assert "=" in mul_line  # 7-cycle multiply occupies several columns

    def test_requires_trace(self):
        with pytest.raises(PipeviewError):
            render_pipeview(None)
        with pytest.raises(PipeviewError):
            render_pipeview([], start=0)

    def test_offset_out_of_range(self, traced_core):
        with pytest.raises(PipeviewError):
            render_pipeview(traced_core.trace_log, start=999)

    def test_narrow_window_marks_overflow(self, traced_core):
        text = render_pipeview(traced_core.trace_log, width=8)
        assert ">" in text

    def test_stage_latencies(self, traced_core):
        summary = stage_latencies(traced_core.trace_log)
        assert summary["front_end"] >= ooo_config(8).front_end.depth
        assert summary["execute"] >= 1.0
        assert stage_latencies([]) == {
            "front_end": 0.0, "wait_issue": 0.0, "execute": 0.0,
            "wait_retire": 0.0,
        }


class TestFigures:
    def make_result(self):
        return ExperimentResult(
            experiment_id="X",
            title="demo",
            paper_expectation="demo expectation",
            columns=["a", "b"],
            rows={
                "bench1": {"a": 1.0, "b": 0.5},
                "bench2": {"a": 0.8, "b": 0.9},
            },
        )

    def test_render_bars_structure(self):
        result = self.make_result()
        result.finalize_averages()
        text = render_bars(result)
        assert "bench1" in text and "bench2" in text
        assert "average" in text
        assert "#" in text

    def test_bar_lengths_track_values(self):
        result = self.make_result()
        text = render_bars(result, bar_width=20, include_average=False)
        bar_lines = [
            line for line in text.splitlines()
            if "#" in line or "*" in line
        ]
        full = next(line for line in bar_lines if "1.00" in line)
        half = next(line for line in bar_lines if "0.50" in line)
        # Series 'a' uses '#', series 'b' uses '*'; the 1.0 bar is full.
        assert full.count("#") == 20
        assert half.count("*") == 10

    def test_render_series_compact(self):
        result = self.make_result()
        text = render_series(result)
        assert "suite average" in text
        assert len(text.splitlines()) == 2 + len(result.columns)

    def test_empty_result(self):
        result = ExperimentResult("E", "t", "p", columns=["x"])
        assert "(no data)" in render_bars(result)
