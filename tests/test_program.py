"""Unit tests for programs and basic blocks."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import opcode_by_name
from repro.isa.program import BasicBlock, Program, ProgramError
from repro.isa.registers import int_reg


def alu(dest, a, b):
    return Instruction(
        opcode=opcode_by_name("addq"), dest=int_reg(dest),
        srcs=(int_reg(a), int_reg(b)),
    )


def branch(name, test, target):
    return Instruction(
        opcode=opcode_by_name(name), srcs=(int_reg(test),), target=target
    )


def uncond(target):
    return Instruction(opcode=opcode_by_name("br"), target=target)


class TestBasicBlock:
    def test_terminator_detection(self):
        block = BasicBlock(0, [alu(1, 2, 3), branch("bne", 1, 0)])
        assert block.terminator is not None
        assert len(block.body) == 1

    def test_no_terminator(self):
        block = BasicBlock(0, [alu(1, 2, 3)])
        assert block.terminator is None
        assert block.body == block.instructions

    def test_interior_branch_rejected(self):
        block = BasicBlock(0, [branch("bne", 1, 0), alu(1, 2, 3)])
        with pytest.raises(ProgramError):
            block.validate()

    def test_name_defaults_to_index(self):
        assert BasicBlock(3).name == "B3"
        assert BasicBlock(3, label="HEAD").name == "HEAD"


class TestProgram:
    def build(self):
        return Program(
            name="p",
            blocks=[
                BasicBlock(0, [alu(1, 2, 3)], label="A"),
                BasicBlock(1, [alu(2, 1, 1), branch("bne", 2, 0)], label="B"),
                BasicBlock(2, [uncond(0)], label="C"),
                BasicBlock(3, [alu(3, 1, 2)], label="D"),
            ],
        )

    def test_successors_fallthrough_only(self):
        program = self.build()
        taken, fallthrough = program.successors(program.blocks[0])
        assert taken is None and fallthrough == 1

    def test_successors_conditional(self):
        program = self.build()
        taken, fallthrough = program.successors(program.blocks[1])
        assert taken == 0 and fallthrough == 2

    def test_successors_unconditional_has_no_fallthrough(self):
        program = self.build()
        taken, fallthrough = program.successors(program.blocks[2])
        assert taken == 0 and fallthrough is None

    def test_last_block_has_no_fallthrough(self):
        program = self.build()
        taken, fallthrough = program.successors(program.blocks[3])
        assert taken is None and fallthrough is None

    def test_block_by_label(self):
        program = self.build()
        assert program.block_by_label("C").index == 2

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                name="dup",
                blocks=[BasicBlock(0, label="X"), BasicBlock(1, label="X")],
            )

    def test_reindex_renumbers(self):
        program = self.build()
        program.blocks.reverse()
        program.reindex()
        assert [b.index for b in program.blocks] == [0, 1, 2, 3]

    def test_validate_rejects_bad_target(self):
        program = self.build()
        program.blocks[1].instructions[-1] = branch("bne", 2, 99)
        with pytest.raises(ProgramError):
            program.validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(ProgramError):
            Program(name="empty", blocks=[]).validate()

    def test_static_size(self):
        assert self.build().static_size == 5

    def test_render_mentions_labels(self):
        text = self.build().render()
        assert "A:" in text and "D:" in text

    def test_copy_structure_keeps_name_and_entry(self):
        program = self.build()
        copy = program.copy_structure(program.blocks)
        assert copy.name == program.name
        assert copy.entry == program.entry

    def test_instructions_iterates_in_layout_order(self):
        program = self.build()
        assert len(list(program.instructions())) == program.static_size
