"""Harness telemetry: metrics histograms, JSONL run logs, profiling.

The metrics layer must be *accounting-complete* (histogram weights cover
every simulated cycle, occupancies never exceed their structural bounds),
the run log must be concurrency-safe and opt-out-able, and the profiling
helpers must be zero-cost when the environment knob is unset.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.obs import (
    BoundedHistogram,
    Observer,
    RunLog,
    aggregate_profiles,
    maybe_profiled,
)
from repro.obs.profiling import ENV_PROFILE_DIR
from repro.obs.runlog import ENV_RUNLOG
from repro.sim.config import braid_config, ooo_config
from repro.sim.run import simulate


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        benchmarks=("gcc",),
        max_instructions=20_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


class TestBoundedHistogram:
    def test_buckets_overflow_and_moments(self):
        hist = BoundedHistogram(bound=4)
        hist.add(0, weight=3)
        hist.add(2)
        hist.add(9, weight=2)  # beyond the bound
        assert hist.counts[0] == 3 and hist.counts[2] == 1
        assert hist.overflow == 2
        assert hist.total_weight == 6
        assert hist.max_value == 9
        assert hist.mean == pytest.approx((0 * 3 + 2 + 9 * 2) / 6)
        summary = hist.summary()
        assert summary["weight"] == 6.0
        assert summary["max"] == 9.0
        assert summary["overflow"] == 2.0

    def test_percentiles_walk_the_buckets(self):
        hist = BoundedHistogram(bound=10)
        for value in (1, 1, 1, 5, 9):
            hist.add(value)
        assert hist.percentile(0.5) == 1
        assert hist.percentile(0.95) == 9


class TestSimulationMetrics:
    @pytest.mark.parametrize(
        "config,braided",
        [(ooo_config(8), False), (braid_config(8), True)],
        ids=["ooo", "braid"],
    )
    def test_occupancy_weights_cover_every_cycle(self, ctx, config, braided):
        workload = ctx.workload("gcc", braided=braided)
        observe = Observer(cpi=True, metrics=True)
        result = simulate(workload, config, observe=observe)
        assert result.metrics is not None
        for name in (
            "rob_occupancy", "fetch_buffer_occupancy", "lsq_occupancy",
            "scheduler_occupancy", "issue_slots",
        ):
            hist = observe.metrics.histograms[name]
            # Every simulated cycle contributes exactly one (weighted)
            # observation — including idle-skipped gap cycles.
            assert hist.total_weight == result.cycles, name
            assert hist.overflow == 0, name
        rob = observe.metrics.histograms["rob_occupancy"]
        assert rob.max_value <= config.max_in_flight
        issue = observe.metrics.histograms["issue_slots"]
        # Issue slots used across all cycles = total issued instructions.
        assert issue.weighted_sum == result.issued


class TestRunLog:
    def test_cells_are_logged_once_per_fresh_run(self, tmp_path, monkeypatch):
        log_path = tmp_path / "runlog.jsonl"
        monkeypatch.setenv(ENV_RUNLOG, str(log_path))
        context = ExperimentContext(
            benchmarks=("gcc",),
            max_instructions=5_000,
            jobs=1,
            cache=ArtifactCache(enabled=False),
        )
        context.run("gcc", ooo_config(8))
        events = RunLog(log_path).read()
        assert len(events) == 1
        event = events[0]
        assert event["event"] == "cell"
        assert event["benchmark"] == "gcc"
        assert event["machine"] == ooo_config(8).name
        assert event["cycles"] > 0 and event["instructions"] > 0
        assert event["seconds"] >= 0
        assert "pid" in event and "ts" in event
        assert event["result_cache_hit"] is False
        # Memoized repeats must not add lines.
        context.run("gcc", ooo_config(8))
        assert len(RunLog(log_path).read()) == 1

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(ENV_RUNLOG, "off")
        log = RunLog.from_env(cache=None)
        assert not log.enabled
        log.log(event="ignored")  # must be a no-op, not an error

    def test_default_lands_next_to_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_RUNLOG, raising=False)
        cache = ArtifactCache(root=tmp_path / "cache", enabled=True)
        log = RunLog.from_env(cache)
        assert log.enabled
        assert log.path == tmp_path / "cache" / "runlog.jsonl"
        disabled = RunLog.from_env(ArtifactCache(enabled=False))
        assert not disabled.enabled

    def test_torn_lines_are_skipped(self, tmp_path):
        path = tmp_path / "runlog.jsonl"
        log = RunLog(path)
        log.log(event="good")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "torn"')  # no newline, no close brace
        events = log.read()
        assert [event["event"] for event in events] == ["good"]


class TestProfiling:
    def test_disabled_is_a_straight_call(self, monkeypatch):
        monkeypatch.delenv(ENV_PROFILE_DIR, raising=False)
        assert maybe_profiled(lambda: 41 + 1) == 42

    def test_profiles_are_dumped_and_aggregated(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_PROFILE_DIR, str(tmp_path))
        assert maybe_profiled(lambda: sum(range(1000))) == 499500
        assert maybe_profiled(lambda: sorted(range(100))) is not None
        profs = list(tmp_path.glob("*.prof"))
        assert len(profs) == 2
        assert all(f"-{os.getpid()}-" in p.name for p in profs)
        report = aggregate_profiles(tmp_path, top=5)
        assert "2 sample file(s)" in report
        assert "cumulative" in report

    def test_aggregate_with_no_data(self, tmp_path):
        assert "no profile data" in aggregate_profiles(tmp_path)
