"""Tests for the observable-equivalence checker itself.

The checker underwrites every translator property test, so it must actually
*fail* when programs differ — a vacuously-true oracle would silently disable
the whole validation story.
"""

from repro.isa import assemble
from repro.sim import observably_equivalent


BASE = """
.block ENTRY
    addq r31, #4096, r1
    addq r31, #5, r2
    addq r31, #7, r3
.block BODY
    mulq r2, r3, r4
    stq r4, 0(r1)
    addqi r2, #-1, r2
    bne r2, BODY
.block DONE
    nop
"""


class TestDetectsDifferences:
    def test_identical_programs_are_equivalent(self):
        assert observably_equivalent(assemble(BASE), assemble(BASE))

    def test_different_memory_result_detected(self):
        # Storing the loop counter instead of the product leaves a different
        # final value at the same address (1*7=7 would coincide; r2 ends 1).
        changed = BASE.replace("stq r4, 0(r1)", "stq r2, 0(r1)")
        assert not observably_equivalent(assemble(BASE), assemble(changed))

    def test_different_store_address_detected(self):
        changed = BASE.replace("stq r4, 0(r1)", "stq r4, 8(r1)")
        assert not observably_equivalent(assemble(BASE), assemble(changed))

    def test_different_control_path_detected(self):
        changed = BASE.replace("addq r31, #5, r2", "addq r31, #6, r2")
        assert not observably_equivalent(assemble(BASE), assemble(changed))

    def test_extra_instruction_detected(self):
        changed = BASE.replace(".block DONE\n    nop", ".block DONE\n    nop\n    nop")
        assert not observably_equivalent(assemble(BASE), assemble(changed))

    def test_dead_register_change_is_tolerated(self):
        # Changing a value never observed through memory or control flow is
        # exactly what braid internalization does; the checker must accept it.
        changed = BASE.replace(
            "addq r31, #7, r3", "addq r31, #7, r3\n    addq r3, r3, r20"
        )
        # r20 is never read or stored... but the extra instruction changes
        # the dynamic count, so make the count equal by padding the base.
        padded = BASE.replace(
            "addq r31, #7, r3", "addq r31, #7, r3\n    addq r3, r3, r21"
        )
        assert observably_equivalent(assemble(padded), assemble(changed))

    def test_instruction_cap_applies_to_both(self):
        assert observably_equivalent(
            assemble(BASE), assemble(BASE), max_instructions=10
        )
