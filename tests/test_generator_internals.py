"""White-box tests of the synthetic workload generator."""

import random
from collections import Counter
from dataclasses import replace

import pytest

from repro.sim import execute
from repro.sim.functional import FunctionalExecutor
from repro.workloads.generator import (
    _SCRATCH_INT,
    BenchmarkGenerator,
    _DagState,
    _Value,
    generate,
)
from repro.workloads.profiles import BenchmarkProfile, profile


def tiny_profile(**kw):
    base = dict(
        name="tiny", suite="int", ops_per_block=1.0, op_size_mean=3.0,
        regions=1, body_blocks=2, inner_trips=4, outer_trips=2,
        array_words=64, seed=3,
    )
    base.update(kw)
    return BenchmarkProfile(**base)


class TestDagState:
    def test_scratch_ring_rotates(self):
        state = _DagState(random.Random(1))
        a = state.scratch(fp=False)
        b = state.scratch(fp=False)
        assert a is not b

    def test_protected_values_are_skipped(self):
        state = _DagState(random.Random(1))
        value = _Value(reg=_SCRATCH_INT[0], fp=False)
        state.protect(value)
        state.int_cursor = 0
        allocated = [state.scratch(fp=False) for _ in range(len(_SCRATCH_INT) - 1)]
        assert value.reg not in allocated

    def test_take_protected_matches_bank(self):
        state = _DagState(random.Random(1))
        state.protect(_Value(reg=_SCRATCH_INT[0], fp=False))
        assert state.take_protected(fp=True) is None
        taken = state.take_protected(fp=False)
        assert taken.reg is _SCRATCH_INT[0]
        assert state.take_protected(fp=False) is None


class TestDrawCount:
    def test_mean_is_respected(self):
        generator = BenchmarkGenerator(tiny_profile())
        draws = [generator._draw_count(1.4) for _ in range(4000)]
        assert 1.3 < sum(draws) / len(draws) < 1.5

    def test_integer_means_are_exact(self):
        generator = BenchmarkGenerator(tiny_profile())
        assert all(generator._draw_count(2.0) == 2 for _ in range(50))


class TestBranchBehaviour:
    def _taken_fraction(self, program, pcs=None):
        executor = FunctionalExecutor(program, max_instructions=100_000)
        outcomes = [
            bool(d.taken) for d in executor.trace() if d.is_branch
        ]
        return sum(outcomes) / len(outcomes)

    def test_low_bias_means_mostly_not_taken_diamonds(self):
        low = generate(tiny_profile(diamond_prob=1.0, branch_bias=0.05,
                                    branch_noise=1.0, inner_trips=40))
        high = generate(tiny_profile(diamond_prob=1.0, branch_bias=0.9,
                                     branch_noise=1.0, inner_trips=40))
        assert self._taken_fraction(low) < self._taken_fraction(high)

    def test_zero_diamond_prob_means_only_loop_branches(self):
        program = generate(tiny_profile(diamond_prob=0.0))
        _, stats = execute(program)
        # loop branches only: regions*(outer) latch executions + outer latch
        names = Counter(
            inst.opcode.name
            for block in program.blocks
            for inst in block.instructions
            if inst.is_branch
        )
        assert set(names) == {"bne"}


class TestProgramShape:
    def test_block_count_scales_with_structure(self):
        small = generate(tiny_profile(regions=1, body_blocks=1))
        large = generate(tiny_profile(regions=3, body_blocks=4))
        assert len(large.blocks) > len(small.blocks)

    def test_memory_accesses_stay_in_array_regions(self):
        program = generate(tiny_profile(load_prob=0.9, store_prob=0.9,
                                        inner_trips=8))
        executor = FunctionalExecutor(program, max_instructions=50_000)
        for dyn in executor.trace():
            if dyn.mem_addr is not None:
                assert 0x8000 <= dyn.mem_addr < 0x8000 + 4 * 0x8_0000 + 0x1000

    def test_fp_profile_emits_fp_ops(self):
        program = generate(tiny_profile(suite="fp", fp_fraction=1.0))
        names = {inst.opcode.name for inst in program.instructions()}
        assert names & {"addt", "mult", "subt", "adds"}
        assert "ldt" in names or "stt" in names

    def test_single_filler_generates_lda_and_nop(self):
        program = generate(tiny_profile(single_filler=2.0))
        names = Counter(inst.opcode.name for inst in program.instructions())
        assert names["nop"] > 1  # fillers plus the exit nop
        assert names["lda"] >= 1

    def test_known_profiles_unchanged_by_generation(self):
        # generate() must not mutate the shared profile objects.
        gcc = profile("gcc")
        before = repr(gcc)
        generate(gcc)
        assert repr(profile("gcc")) == before
