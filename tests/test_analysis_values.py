"""Tests for value fanout/lifetime characterization (paper section 1.1)."""

import pytest

from repro.analysis.values import (
    ValueCharacterization,
    average_fractions,
    characterize_suite,
    characterize_values,
)
from repro.isa import assemble


class TestHandBuiltPrograms:
    def test_single_use_value(self):
        chars = characterize_values(
            assemble(
                """
                addq r1, r2, r3
                addq r3, r1, r4
                """
            )
        )
        # r3: one read; r4: zero reads; live-ins r1/r2 are not counted as
        # produced values (they were never defined).
        assert chars.fanout[1] == 1
        assert chars.fanout[0] == 1
        assert chars.total_values == 2

    def test_fanout_two(self):
        chars = characterize_values(
            assemble(
                """
                addq r1, r2, r3
                addq r3, r3, r4
                """
            )
        )
        assert chars.fanout[2] == 1

    def test_redefinition_closes_value(self):
        chars = characterize_values(
            assemble(
                """
                addq r1, r2, r3
                addq r1, r1, r3
                addq r3, r3, r4
                """
            )
        )
        assert chars.fanout[0] == 2  # first r3 dead, r4 dead
        assert chars.fanout[2] == 1  # second r3 read twice

    def test_lifetime_distance(self):
        chars = characterize_values(
            assemble(
                """
                addq r1, r2, r3
                nop
                nop
                addq r3, r1, r4
                """
            )
        )
        assert chars.lifetime == {3: 1}
        assert chars.lifetime_fraction(2) == 0.0
        assert chars.lifetime_fraction(3) == 1.0

    def test_dynamic_values_in_loop(self, small_program):
        chars = characterize_values(small_program)
        # Five iterations: each produces fresh dynamic values.
        assert chars.total_values > 10


class TestFractions:
    def test_fractions_sum_consistency(self, gcc_program):
        chars = characterize_values(gcc_program, max_instructions=20_000)
        assert 0.0 <= chars.fraction_unused <= 1.0
        assert chars.fraction_single_use <= chars.fraction_at_most_two_uses
        assert (
            chars.fanout_fraction(10**9)
            == pytest.approx(1.0)
        )

    def test_empty_characterization(self):
        chars = ValueCharacterization(name="empty")
        assert chars.fraction_single_use == 0.0
        assert chars.fraction_short_lived == 0.0

    def test_average_fractions(self, gcc_program):
        rows = characterize_suite({"gcc": gcc_program}, max_instructions=10_000)
        averages = average_fractions(rows.values())
        assert set(averages) == {
            "single_use", "at_most_two_uses", "unused", "lifetime_le_32",
        }
        assert average_fractions([]) == {}

    def test_paper_headline_on_gcc(self, gcc_program):
        chars = characterize_values(gcc_program, max_instructions=30_000)
        assert chars.fraction_single_use > 0.5
        assert chars.fraction_short_lived > 0.7
