"""Unit tests for global liveness analysis."""

from repro.dataflow.liveness import LivenessAnalysis, dead_definitions
from repro.isa import assemble
from repro.isa.registers import int_reg


class TestStraightLine:
    def test_use_before_def_is_live_in(self):
        program = assemble(
            """
            .block A
                addq r1, r2, r3
            """
        )
        liveness = LivenessAnalysis(program)
        assert int_reg(1) in liveness.live_in(program.blocks[0])
        assert int_reg(2) in liveness.live_in(program.blocks[0])
        assert int_reg(3) not in liveness.live_in(program.blocks[0])

    def test_nothing_live_out_of_last_block(self):
        program = assemble("addq r1, r2, r3")
        liveness = LivenessAnalysis(program)
        assert liveness.live_out(program.blocks[0]) == set()


class TestLoop:
    SOURCE = """
    .block ENTRY
        addq r31, #10, r1
        addq r31, #0, r2
    .block LOOP
        addq r2, r1, r3
        addqi r2, #1, r2
        cmplt r2, r1, r4
        bne r4, LOOP
    .block EXIT
        stq r3, 0(r1)
        nop
    """

    def test_loop_carried_values_live_around_backedge(self):
        program = assemble(self.SOURCE)
        liveness = LivenessAnalysis(program)
        loop = program.block_by_label("LOOP")
        # r1 (bound) and r2 (counter) circulate around the loop.
        assert int_reg(1) in liveness.live_in(loop)
        assert int_reg(2) in liveness.live_in(loop)
        assert int_reg(1) in liveness.live_out(loop)
        assert int_reg(2) in liveness.live_out(loop)

    def test_value_read_in_later_block_is_live_out(self):
        program = assemble(self.SOURCE)
        liveness = LivenessAnalysis(program)
        loop = program.block_by_label("LOOP")
        assert int_reg(3) in liveness.live_out(loop)  # stored in EXIT

    def test_escaping_defs(self):
        program = assemble(self.SOURCE)
        liveness = LivenessAnalysis(program)
        loop = program.block_by_label("LOOP")
        escaping = liveness.escaping_defs(loop)
        # positions: 0 addq(r3), 1 addqi(r2), 2 cmplt(r4)
        assert escaping[0] is int_reg(3)
        assert escaping[1] is int_reg(2)
        # r4 is consumed by the branch inside the block and dead outside.
        assert 2 not in escaping

    def test_redefined_register_only_last_def_escapes(self):
        program = assemble(
            """
            .block A
                addq r1, r2, r3
                addq r3, r3, r3
            .block B
                stq r3, 0(r1)
            """
        )
        liveness = LivenessAnalysis(program)
        escaping = liveness.escaping_defs(program.blocks[0])
        assert list(escaping) == [1]


class TestDeadDefinitions:
    def test_unread_value_is_dead(self):
        program = assemble(
            """
            addq r1, r2, r3
            addq r1, r2, r4
            stq r4, 0(r1)
            """
        )
        liveness = LivenessAnalysis(program)
        dead = dead_definitions(program, liveness)
        assert len(dead) == 1
        assert dead[0].dest is int_reg(3)

    def test_overwritten_before_read_is_dead(self):
        program = assemble(
            """
            addq r1, r2, r3
            addq r2, r2, r3
            stq r3, 0(r1)
            """
        )
        liveness = LivenessAnalysis(program)
        dead = dead_definitions(program, liveness)
        assert len(dead) == 1

    def test_all_values_used_means_no_dead(self, small_program):
        liveness = LivenessAnalysis(small_program)
        dead = dead_definitions(small_program, liveness)
        # small_program stores/uses everything except possibly the final
        # compare; allow only branch-test values read in-block.
        assert all(inst.dest is not None for inst in dead)
