"""Tests for the synthetic benchmark suite and its calibration."""

import pytest

from repro.analysis import braid_statistics, characterize_values
from repro.core import braidify
from repro.sim import execute
from repro.workloads import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    build_program,
    build_suite,
    profile,
    quick_suite,
    scaled,
)


class TestSuiteStructure:
    def test_twenty_six_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 26
        assert len(INT_BENCHMARKS) == 12
        assert len(FP_BENCHMARKS) == 14

    def test_paper_benchmark_names(self):
        for name in ("gcc", "mcf", "crafty", "swim", "mgrid", "wupwise"):
            assert name in ALL_BENCHMARKS

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            profile("doom")

    def test_quick_suite_subset(self):
        programs = quick_suite()
        assert set(programs) == {"gcc", "mcf", "swim", "equake"}


class TestDeterminism:
    def test_same_profile_same_program(self):
        a = build_program("gcc")
        b = build_program("gcc")
        assert a.render() == b.render()

    def test_different_benchmarks_differ(self):
        assert build_program("gcc").render() != build_program("vpr").render()

    def test_scaling_changes_dynamic_not_static_shape(self):
        short = build_program("gcc", scale=1.0)
        long = build_program("gcc", scale=2.0)
        assert short.static_size == long.static_size
        _, s1 = execute(short)
        _, s2 = execute(long)
        assert s2.dynamic_instructions > s1.dynamic_instructions

    def test_scaled_profile(self):
        base = profile("gcc")
        assert scaled(base, 3.0).outer_trips == base.outer_trips * 3
        assert scaled(base, 0.01).outer_trips >= 1


class TestExecutability:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_every_benchmark_terminates(self, name):
        program = build_program(name)
        program.validate()
        _, stats = execute(program, max_instructions=400_000)
        assert stats.completed
        assert stats.stores > 0  # results are observable

    @pytest.mark.parametrize("name", ("gcc", "swim"))
    def test_every_benchmark_braidifies(self, name):
        program = build_program(name)
        compilation = braidify(program)
        assert compilation.total_braids > 0


class TestCalibration:
    """The generated suite must reproduce the paper's headline statistics."""

    @pytest.fixture(scope="class")
    def suite_stats(self):
        stats = {}
        for name in ("gcc", "vpr", "twolf", "swim", "applu", "lucas"):
            compilation = braidify(build_program(name))
            suite = "int" if name in INT_BENCHMARKS else "fp"
            stats[name] = braid_statistics(compilation, suite=suite)
        return stats

    def test_braids_per_block_in_paper_range(self, suite_stats):
        for stats in suite_stats.values():
            assert 1.5 <= stats.braids_per_block() <= 8.0

    def test_braid_width_is_narrow(self, suite_stats):
        # Paper Table 2: width ~1.0-1.4 everywhere.
        for stats in suite_stats.values():
            assert 1.0 <= stats.mean_width() <= 1.6

    def test_external_outputs_below_inputs(self, suite_stats):
        # Paper Table 3: ~0.7 outputs vs ~1.7-2.2 inputs per braid.
        for stats in suite_stats.values():
            assert stats.mean_external_outputs() < stats.mean_external_inputs() + 0.5

    def test_value_fanout_headline(self):
        chars = characterize_values(build_program("gcc"), max_instructions=30_000)
        assert chars.fraction_single_use > 0.55
        assert chars.fraction_at_most_two_uses > 0.80
        assert chars.fraction_unused < 0.15

    def test_value_lifetime_headline(self):
        chars = characterize_values(build_program("gcc"), max_instructions=30_000)
        assert chars.fraction_short_lived > 0.70

    def test_fp_braids_larger_than_int(self):
        int_stats = braid_statistics(braidify(build_program("gcc")), "int")
        fp_stats = braid_statistics(braidify(build_program("swim")), "fp")
        assert fp_stats.mean_size() > int_stats.mean_size()


class TestBuildSuite:
    def test_build_suite_selection(self):
        programs = build_suite(("gcc", "swim"))
        assert set(programs) == {"gcc", "swim"}

    def test_program_names_match_keys(self):
        programs = build_suite(("gcc",))
        assert programs["gcc"].name == "gcc"
