"""Batched multi-config simulation shares phase-one facts, changes nothing.

``simulate_batch`` runs N machine configs against one prepared workload,
warming the decoded/replay facts once and coalescing duplicate configs.
Sharing is a pure speed layer: every result must be bit-identical to a
standalone :func:`simulate` call.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.sim.batch import batch_order, simulate_batch
from repro.sim.config import (
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
)
from repro.sim.run import simulate


@pytest.fixture(scope="module")
def ctx():
    # scale=8 so the trace is long enough for the interval planner in
    # test_batch_forwards_fidelity (short traces fall back to exact).
    return ExperimentContext(
        benchmarks=("gcc",),
        scale=8,
        max_instructions=200_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


def fingerprint(result):
    return (
        result.cycles,
        result.instructions,
        result.issued,
        dataclasses.asdict(result.stalls),
        sorted(result.extra.items()),
    )


def test_batch_order_keeps_first_appearance():
    a, b = ooo_config(), inorder_config()
    assert batch_order([a, b, a, b, a]) == [0, 1]
    assert batch_order([b, a]) == [0, 1]
    assert batch_order([]) == []


def test_batch_matches_standalone_runs(ctx):
    workload = ctx.workload("gcc")
    configs = [ooo_config(), inorder_config(), depsteer_config()]
    batched = simulate_batch(workload, configs)
    assert len(batched) == len(configs)
    for config, result in zip(configs, batched):
        assert fingerprint(result) == fingerprint(simulate(workload, config))


def test_braided_workload_batches(ctx):
    workload = ctx.workload("gcc", braided=True)
    (result,) = simulate_batch(workload, [braid_config()])
    assert fingerprint(result) == (
        fingerprint(simulate(workload, braid_config()))
    )


def test_duplicate_configs_share_one_result(ctx):
    workload = ctx.workload("gcc")
    config = ooo_config()
    first, second, third = simulate_batch(
        workload, [config, config, config]
    )
    assert first is second is third


def test_batch_forwards_fidelity(ctx):
    workload = ctx.workload("gcc")
    results = simulate_batch(
        workload, [ooo_config(), inorder_config()], fidelity="interval"
    )
    assert all(result.fidelity == "interval" for result in results)
    direct = simulate(workload, ooo_config(), fidelity="interval")
    assert results[0].cycles == direct.cycles
