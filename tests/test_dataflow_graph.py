"""Unit tests for per-block dataflow graphs."""

from repro.dataflow.graph import BlockGraph
from repro.isa import assemble
from repro.isa.registers import int_reg


def graph_of(source: str, block: int = 0) -> BlockGraph:
    program = assemble(source)
    return BlockGraph(program.blocks[block])


class TestEdges:
    def test_simple_chain(self):
        graph = graph_of(
            """
            addq r1, r2, r3
            addq r3, r3, r4
            """
        )
        assert len(graph.edges) == 2  # r3 feeds both source operands
        assert graph.producer_of[1] == {0: 0, 1: 0}
        assert graph.consumers_of[0] == [1]

    def test_external_inputs(self):
        graph = graph_of("addq r1, r2, r3")
        inputs = graph.external_inputs[0]
        assert {reg for _, reg in inputs} == {int_reg(1), int_reg(2)}

    def test_redefinition_cuts_edges(self):
        graph = graph_of(
            """
            addq r1, r2, r3
            addq r1, r1, r3
            addq r3, r3, r4
            """
        )
        # The consumer reads the *second* definition of r3 only.
        assert graph.producer_of[2] == {0: 1, 1: 1}
        assert graph.in_block_fanout(0) == 0
        assert graph.is_last_writer(1)
        assert not graph.is_last_writer(0)

    def test_zero_register_never_creates_edges(self):
        graph = graph_of(
            """
            addq r1, r2, r31
            addq r31, r31, r3
            """
        )
        assert graph.edges == []

    def test_memory_base_register_edge(self):
        graph = graph_of(
            """
            addq r1, r2, r3
            ldq r4, 0(r3)
            """
        )
        assert graph.producer_of[1] == {0: 0}


class TestComponents:
    def test_connected_component_spans_chain(self):
        graph = graph_of(
            """
            addq r1, r2, r3
            addq r3, r1, r4
            addq r5, r6, r7
            """
        )
        assert graph.connected_component(0) == {0, 1}
        assert graph.connected_component(2) == {2}

    def test_shared_external_input_does_not_merge(self):
        # Both instructions read r1, but reading the same incoming value
        # does not connect them (no def-use edge inside the block).
        graph = graph_of(
            """
            addq r1, r2, r3
            addq r1, r4, r5
            """
        )
        assert graph.connected_component(0) == {0}
        assert graph.connected_component(1) == {1}

    def test_join_merges_components(self):
        graph = graph_of(
            """
            addq r1, r2, r3
            addq r4, r5, r6
            addq r3, r6, r7
            """
        )
        assert graph.connected_component(0) == {0, 1, 2}


class TestLongestPath:
    def test_chain_depth(self):
        graph = graph_of(
            """
            addq r1, r2, r3
            addq r3, r3, r4
            addq r4, r4, r5
            """
        )
        assert graph.longest_path_length({0, 1, 2}) == 3

    def test_parallel_instructions_have_depth_one(self):
        graph = graph_of(
            """
            addq r1, r2, r3
            addq r4, r5, r6
            """
        )
        assert graph.longest_path_length({0, 1}) == 1

    def test_subset_restricts_path(self):
        graph = graph_of(
            """
            addq r1, r2, r3
            addq r3, r3, r4
            addq r4, r4, r5
            """
        )
        assert graph.longest_path_length({0, 2}) == 1
        assert graph.longest_path_length(set()) == 0

    def test_width_of_paper_example(self, gcc_life):
        # The Figure 2 LOOP block: dataflow width should be close to the
        # paper's reported ~1.1-2 (a mostly serial mask computation fed by
        # three parallel loads).
        loop = gcc_life.block_by_label("LOOP")
        graph = BlockGraph(loop)
        positions = set(range(len(loop.instructions)))
        depth = graph.longest_path_length(positions)
        assert 4 <= depth <= len(loop.instructions)
