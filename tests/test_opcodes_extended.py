"""Tests for the extended Alpha opcode set (scaled adds, byte ops, umulh)."""

import pytest

from repro.isa.opcodes import MASK64, OpCategory, opcode_by_name, to_unsigned


def run(name, srcs, imm=0):
    return opcode_by_name(name).semantics(srcs, imm)


class TestScaledAdds:
    def test_s4addq(self):
        assert run("s4addq", (10, 3)) == 43

    def test_s8addq_computes_word_addresses(self):
        base, index = 0x8000, 5
        assert run("s8addq", (index, base)) == base + 8 * index

    def test_s4subq(self):
        assert run("s4subq", (10, 3)) == 37

    def test_s8subq_wraps(self):
        assert run("s8subq", (0, 1)) == to_unsigned(-1)

    def test_latency_is_single_cycle(self):
        assert opcode_by_name("s8addq").latency == 1


class TestByteManipulation:
    VALUE = 0x8877665544332211

    @pytest.mark.parametrize("byte,expected", [(0, 0x11), (3, 0x44), (7, 0x88)])
    def test_extbl(self, byte, expected):
        assert run("extbl", (self.VALUE, byte)) == expected

    def test_insbl(self):
        assert run("insbl", (0xAB, 2)) == 0xAB0000

    def test_insbl_masks_to_byte(self):
        assert run("insbl", (0x1FF, 0)) == 0xFF

    def test_mskbl(self):
        assert run("mskbl", (self.VALUE, 1)) == 0x8877665544330011

    def test_extract_insert_mask_compose(self):
        # Classic byte-store sequence: replace byte 3 of VALUE with 0x5A.
        cleared = run("mskbl", (self.VALUE, 3))
        inserted = run("insbl", (0x5A, 3))
        result = run("bis", (cleared, inserted))
        assert run("extbl", (result, 3)) == 0x5A
        assert run("extbl", (result, 2)) == 0x33

    def test_shift_counts_wrap_at_eight(self):
        assert run("extbl", (self.VALUE, 8)) == run("extbl", (self.VALUE, 0))


class TestUmulh:
    def test_high_half_of_small_product_is_zero(self):
        assert run("umulh", (3, 4)) == 0

    def test_high_half_of_large_product(self):
        assert run("umulh", (MASK64, MASK64)) == MASK64 - 1

    def test_category_is_multiply(self):
        assert opcode_by_name("umulh").category is OpCategory.IMUL
        assert opcode_by_name("umulh").latency == 7


class TestIntegrationWithAssembler:
    def test_assembles_and_executes(self):
        from repro.isa import assemble
        from repro.sim import execute

        program = assemble(
            """
            addq r31, #5, r1
            addq r31, #32768, r2
            s8addq r1, r2, r3     ; &array[5]
            stq r1, 0(r3)
            extbl r1, r31, r4     ; low byte of 5
            """
        )
        state, _ = execute(program)
        assert state.int_regs[3] == 32768 + 40
        assert state.memory[32768 + 40] == 5
        assert state.int_regs[4] == 5

    def test_braidifies(self):
        from repro.core import braidify
        from repro.isa import assemble
        from repro.sim import observably_equivalent

        program = assemble(
            """
            addq r31, #7, r1
            addq r31, #32768, r2
            s8addq r1, r2, r3
            umulh r1, r1, r4
            insbl r1, r4, r5
            stq r5, 0(r3)
            """
        )
        compilation = braidify(program)
        assert observably_equivalent(program, compilation.translated)
