"""Public API surface tests: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.isa",
    "repro.workloads",
    "repro.dataflow",
    "repro.core",
    "repro.uarch",
    "repro.sim",
    "repro.analysis",
    "repro.harness",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestExports:
    def test_imports(self, package):
        module = importlib.import_module(package)
        assert module is not None

    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a docstring"


class TestPublicCallablesDocumented:
    @pytest.mark.parametrize("package", PACKAGES[1:])
    def test_exported_callables_have_docstrings(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if callable(obj) and not isinstance(obj, type):
                if not getattr(obj, "__doc__", None):
                    undocumented.append(name)
        assert not undocumented, f"{package}: {undocumented}"

    @pytest.mark.parametrize("package", PACKAGES[1:])
    def test_exported_classes_have_docstrings(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if isinstance(obj, type) and not obj.__doc__:
                undocumented.append(name)
        assert not undocumented, f"{package}: {undocumented}"


class TestVersion:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
