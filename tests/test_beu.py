"""Unit tests for the braid execution unit and the distribute stage."""

from dataclasses import replace

import pytest

from repro.core import braidify
from repro.sim import braid_config, prepare_workload
from repro.sim.beu import BraidExecutionUnit
from repro.sim.run import build_core
from repro.workloads import kernel


class _FakeInst:
    pass


class TestCapacityRules:
    def test_fresh_beu_accepts(self):
        beu = BraidExecutionUnit(0, braid_config(8))
        assert beu.can_accept_braid()
        assert beu.drained

    def test_single_braid_policy_blocks_until_drained(self):
        beu = BraidExecutionUnit(0, braid_config(8))
        beu.start_braid()
        beu.enqueue(_FakeInst())
        assert not beu.can_accept_braid()
        beu.fifo.popleft()  # instruction issued
        assert beu.can_accept_braid()

    def test_queueing_policy_only_needs_space(self):
        config = replace(braid_config(8), beu_queue_braids=True)
        beu = BraidExecutionUnit(0, config)
        beu.enqueue(_FakeInst())
        assert beu.can_accept_braid()

    def test_fifo_overflow_guard(self):
        config = replace(braid_config(8), cluster_entries=2)
        beu = BraidExecutionUnit(0, config)
        beu.enqueue(_FakeInst())
        beu.enqueue(_FakeInst())
        assert not beu.has_space()
        with pytest.raises(RuntimeError):
            beu.enqueue(_FakeInst())

    def test_default_internal_regfile_spec(self):
        config = replace(braid_config(8), internal_regfile=None)
        beu = BraidExecutionUnit(0, config)
        assert beu.internal_reads.ports == 4
        assert beu.internal_writes.ports == 2


class TestDistribution:
    @pytest.fixture(scope="class")
    def core(self):
        program = kernel("gcc_life")
        compilation = braidify(program)
        workload = prepare_workload(compilation.translated)
        core = build_core(workload, braid_config(8))
        core.run()
        return core

    def test_braids_accepted_counter(self, core):
        accepted = sum(beu.braids_accepted for beu in core.beus)
        starts = sum(
            1 for d in core.workload.trace if d.inst.annot.start
        )
        assert accepted == starts

    def test_all_fifos_drain(self, core):
        for beu in core.beus:
            assert beu.drained

    def test_round_robin_spreads_braids(self, core):
        used = [beu for beu in core.beus if beu.braids_accepted > 0]
        assert len(used) >= 2

    def test_busybit_traffic_recorded(self, core):
        sets = sum(beu.busybits.set_events for beu in core.beus)
        ext_dests = sum(
            1
            for d in core.workload.trace
            if d.inst.writes() is not None and d.inst.annot.dest_external
        )
        assert sets == ext_dests
