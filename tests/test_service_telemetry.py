"""Service telemetry: stamps, timelines, heartbeats, metrics export.

The load-bearing property here is that observability is *additive*: the
timestamps ride every journal event but the state fold ignores them (so
dedup, recovery, and chaos bit-identity cannot shift), heartbeat files
are atomic JSON a SIGKILL can never tear, and the Prometheus exposition
round-trips through its own validator.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.obs.metrics import (
    BoundedHistogram,
    MetricsRegistry,
    parse_prometheus,
    prometheus_errors,
)
from repro.service import JobRequest, JobStore
from repro.service.jobstore import SERVICE_FORMAT_VERSION
from repro.service.telemetry import (
    ProgressPublisher,
    describe_progress,
    event_stamp,
    heartbeat_age,
    job_timeline,
    latency_histograms,
    progress_probe,
    read_health,
    read_progress,
    strip_stamp,
    write_health,
)


def lifecycle_store(root):
    """A store whose journal exercises every event kind."""
    store = JobStore(root)
    job_a, _ = store.submit(JobRequest(kind="simulate",
                                       params={"benchmark": "gcc"}))
    store.submit(JobRequest(kind="simulate", params={"benchmark": "gcc"},
                            client="other"))  # coalesce
    job_b, _ = store.submit(JobRequest(kind="simulate",
                                       params={"benchmark": "mcf"}))
    store.claim(job_a)
    store.fail(job_a, "worker died mid-task", permanent=False, attempts=1)
    store.claim(job_b)
    store.requeue(job_b, "result store write failed", attempts=1)
    store.claim(job_b)
    store.complete(job_b, {"cycles": 42}, attempts=2)
    store.drain()
    return store


class TestEventStamps:
    def test_every_journaled_event_is_stamped(self, tmp_path):
        store = lifecycle_store(tmp_path / "store")
        assert store.journal.records, "lifecycle journaled nothing"
        for record in store.journal.records:
            assert record["ts"] > 0
            assert record["mono"] > 0
            assert record["pid"] == os.getpid()
        store.close()

    def test_fold_ignores_timestamps(self, tmp_path):
        """Replaying a journal with the stamps stripped reconstructs the
        identical store state — pins that telemetry stays out of the
        state machine."""
        stamped = lifecycle_store(tmp_path / "stamped")
        stripped_root = tmp_path / "stripped"
        stripped_root.mkdir()
        header = {"kind": "service-journal",
                  "version": SERVICE_FORMAT_VERSION}
        with open(stripped_root / "journal.jsonl", "w",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for record in stamped.journal.records:
                handle.write(
                    json.dumps(strip_stamp(record), sort_keys=True) + "\n"
                )
        stripped = JobStore(stripped_root)
        assert {
            job_id: job.summary() for job_id, job in stamped.jobs.items()
        } == {
            job_id: job.summary() for job_id, job in stripped.jobs.items()
        }
        assert stamped.counters() == stripped.counters()
        stamped.close()
        stripped.close()

    def test_strip_stamp_removes_only_stamp_fields(self):
        record = {"event": "submit", "job": "j1", **event_stamp()}
        assert strip_stamp(record) == {"event": "submit", "job": "j1"}


class TestTimelines:
    def stamp(self, pid, mono, ts=None):
        return {"pid": pid, "mono": mono,
                "ts": 1000.0 + mono if ts is None else ts}

    def test_queue_wait_and_run_time(self):
        records = [
            {"event": "submit", "job": "j1", **self.stamp(1, 10.0)},
            {"event": "start", "job": "j1", **self.stamp(1, 10.5)},
            {"event": "done", "job": "j1", **self.stamp(1, 12.5)},
        ]
        timeline = job_timeline(records, "j1")
        assert timeline["queue_wait"] == pytest.approx(0.5)
        assert timeline["run_time"] == pytest.approx(2.0)
        assert timeline["retry_latencies"] == []
        assert len(timeline["events"]) == 3

    def test_retry_latency_spans_requeue_to_restart(self):
        records = [
            {"event": "submit", "job": "j1", **self.stamp(1, 0.0)},
            {"event": "start", "job": "j1", **self.stamp(1, 1.0)},
            {"event": "requeue", "job": "j1", **self.stamp(1, 2.0)},
            {"event": "start", "job": "j1", **self.stamp(1, 2.25)},
            {"event": "done", "job": "j1", **self.stamp(1, 3.0)},
        ]
        timeline = job_timeline(records, "j1")
        assert timeline["retry_latencies"] == [pytest.approx(0.25)]
        # Run time measures the *last* attempt.
        assert timeline["run_time"] == pytest.approx(0.75)

    def test_cross_pid_delta_uses_wall_clock(self):
        # Different pids: mono clocks are incomparable, wall time rules.
        records = [
            {"event": "submit", "job": "j1", "pid": 1, "mono": 500.0,
             "ts": 100.0},
            {"event": "start", "job": "j1", "pid": 2, "mono": 1.0,
             "ts": 103.0},
        ]
        timeline = job_timeline(records, "j1")
        assert timeline["queue_wait"] == pytest.approx(3.0)

    def test_stepped_wall_clock_clamps_at_zero(self):
        records = [
            {"event": "submit", "job": "j1", "pid": 1, "mono": 0.0,
             "ts": 100.0},
            {"event": "start", "job": "j1", "pid": 2, "mono": 0.0,
             "ts": 90.0},  # NTP stepped the clock backwards
        ]
        assert job_timeline(records, "j1")["queue_wait"] == 0.0

    def test_unstamped_events_yield_no_durations(self):
        records = [
            {"event": "submit", "job": "j1"},
            {"event": "start", "job": "j1"},
            {"event": "done", "job": "j1"},
        ]
        timeline = job_timeline(records, "j1")
        assert timeline["queue_wait"] is None
        assert timeline["run_time"] is None

    def test_latency_histograms_cover_all_jobs(self, tmp_path):
        store = lifecycle_store(tmp_path / "store")
        histograms = latency_histograms(store.journal.records)
        assert histograms["queue_wait_ms"].total_weight == 2
        assert histograms["run_ms"].total_weight == 2  # one failed, one done
        assert histograms["retry_ms"].total_weight == 1
        store.close()


class TestProgressPublisher:
    def test_publish_and_read_round_trip(self, tmp_path):
        publisher = ProgressPublisher(tmp_path, "j1", attempt=2,
                                      interval=0.0)
        publisher.publish(100, 1000, 250)
        beat = read_progress(tmp_path, "j1")
        assert beat["job"] == "j1" and beat["attempt"] == 2
        assert beat["instructions"] == 100
        assert beat["instructions_total"] == 1000
        assert beat["cycles"] == 250
        assert beat["pid"] == os.getpid()
        assert heartbeat_age(beat) < 60.0

    def test_throttle_skips_inside_interval(self, tmp_path):
        publisher = ProgressPublisher(tmp_path, "j1", interval=3600.0)
        publisher.publish(1, 10, 1)
        publisher.publish(2, 10, 2)
        assert publisher.published == 1
        assert read_progress(tmp_path, "j1")["instructions"] == 1
        publisher.publish(3, 10, 3, force=True)
        assert read_progress(tmp_path, "j1")["instructions"] == 3

    def test_cells_and_eta(self, tmp_path):
        publisher = ProgressPublisher(tmp_path, "j1", interval=0.0)
        publisher.start_cell("gcc/braid", 1, 4)
        publisher._started -= 1.0  # pretend a second of work happened
        publisher.publish(500, 1000, 800)
        beat = read_progress(tmp_path, "j1")
        assert beat["cell"] == "gcc/braid"
        assert beat["cells_done"] == 1 and beat["cells_total"] == 4
        assert beat["eta_seconds"] > 0

    def test_from_env_is_none_when_unarmed(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS_DIR", raising=False)
        assert ProgressPublisher.from_env("j1") is None

    def test_from_env_reads_interval_and_attempt(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "0.125")
        monkeypatch.setenv("REPRO_TASK_ATTEMPT", "3")
        publisher = ProgressPublisher.from_env("j1")
        assert publisher.interval == 0.125
        assert publisher.attempt == 3

    def test_publish_failure_never_raises(self, tmp_path):
        target = tmp_path / "gone"
        publisher = ProgressPublisher(target, "j1", interval=0.0)
        target.mkdir()
        target.chmod(0o444)
        try:
            publisher.publish(1, 10, 1)  # EACCES swallowed
        finally:
            target.chmod(0o755)

    def test_probe_and_description(self, tmp_path):
        probe = progress_probe(tmp_path)
        assert probe("j1") is None
        assert describe_progress(probe("j1")) == (
            "no heartbeat ever published"
        )
        ProgressPublisher(tmp_path, "j1", interval=0.0).publish(7, 10, 9)
        line = describe_progress(probe("j1"))
        assert "retired 7/10 instructions" in line
        assert "9 cycles" in line
        assert "last heartbeat" in line


class TestHealth:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "health.json"
        write_health(path, round_number=3,
                     started=time.monotonic() - 5.0,
                     counters={"completed": 2}, draining=True)
        health = read_health(path)
        assert health["pid"] == os.getpid()
        assert health["round"] == 3
        assert health["uptime_seconds"] >= 5.0
        assert health["draining"] is True
        assert health["counters"] == {"completed": 2}

    def test_missing_file_reads_none(self, tmp_path):
        assert read_health(tmp_path / "absent.json") is None


class TestPrometheus:
    def registry(self):
        registry = MetricsRegistry()
        registry.counter("service.jobs_completed", 7)
        registry.counter("service.torn-lines", 0)  # name needs sanitizing
        histogram = BoundedHistogram(100)
        for value in (1, 2, 3, 50):
            histogram.add(value)
        registry.histograms["run_ms"] = histogram
        return registry

    def test_render_validates_and_round_trips(self):
        text = self.registry().render_prometheus()
        assert prometheus_errors(text) == []
        samples = parse_prometheus(text)
        assert samples["repro_service_jobs_completed"] == 7.0
        assert samples["repro_service_torn_lines"] == 0.0
        assert samples['repro_run_ms{stat="weight"}'] == 4.0
        assert samples['repro_run_ms{stat="max"}'] == 50.0

    def test_type_comments_precede_samples(self):
        lines = self.registry().render_prometheus().splitlines()
        seen_types = set()
        for line in lines:
            if line.startswith("# TYPE "):
                seen_types.add(line.split()[2])
            elif line:
                name = line.split("{")[0].split()[0]
                assert name in seen_types

    def test_validator_rejects_garbage(self):
        assert prometheus_errors("not a metric line at all\n")
        assert prometheus_errors("ok_name not_a_number\n")
        assert prometheus_errors("# TYPE x nonsense-type\nx 1\n")
        assert prometheus_errors("# TYPE x counter\n# TYPE x counter\nx 1\n")
        assert prometheus_errors('bad{unterminated="yes\n')

    def test_parse_raises_on_invalid(self):
        with pytest.raises(ValueError):
            parse_prometheus("?? 12\n")

    def test_supervisor_round_trip(self, tmp_path):
        """A drained supervisor leaves a parseable exposition + health."""
        from repro.service.supervisor import ServiceConfig, Supervisor

        store = lifecycle_store(tmp_path / "store")
        supervisor = Supervisor(
            store, ServiceConfig(drain_when_idle=True, heartbeat=0.0)
        )
        supervisor.run()
        text = store.metrics_path.read_text(encoding="utf-8")
        assert prometheus_errors(text) == []
        samples = parse_prometheus(text)
        assert samples["repro_service_completed"] == 1.0
        assert samples["repro_service_coalesced"] == 1.0
        assert samples['repro_queue_wait_ms{stat="weight"}'] == 2.0
        health = read_health(store.health_path)
        assert health["pid"] == os.getpid()
        assert health["counters"]["completed"] == 1
        store.close()
