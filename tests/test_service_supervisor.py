"""Supervisor scheduling, retry classification, and drain (repro.service).

These run real (tiny) simulations through the full submit -> claim ->
hardened-dispatch -> settle pipeline, in-process and serial, so each
test stays in the tens of milliseconds while still exercising the same
code path the ``serve`` CLI drives.
"""

from __future__ import annotations

import pytest

from repro.service import ChaosSpec, JobRequest, JobStore
from repro.service.jobs import normalize_params
from repro.service.jobstore import DONE, FAILED
from repro.service.retry import RetryPolicy
from repro.service.supervisor import ServiceConfig, Supervisor, serve

#: tiny sims: the protocols under test do not care about run length
SIZING = {"scale": 0.05, "max_instructions": 3000}


def batch_config(**kwargs):
    kwargs.setdefault("policy", RetryPolicy(backoff=0.01, deadline=60.0))
    return ServiceConfig(jobs=1, drain_when_idle=True, **kwargs)


def submit(store, kind, params, client="default"):
    job_id, _ = store.submit(JobRequest(
        kind=kind, params=normalize_params(kind, {**params, **(
            SIZING if kind != "faults" else {"scale": SIZING["scale"]}
        )}), client=client,
    ))
    return job_id


class TestServe:
    def test_mixed_batch_drains_to_done(self, tmp_path):
        store = JobStore(tmp_path / "store")
        sim = submit(store, "simulate",
                     {"benchmark": "gcc", "core": "braid"})
        sweep = submit(store, "sweep",
                       {"benchmarks": "gcc", "cores": "braid,inorder"})
        summary = serve(store, batch_config())
        assert summary["drained"] is False and summary["rounds"] == 1
        assert store.job(sim).status == DONE
        assert store.job(sweep).status == DONE
        result = store.result(sim)
        assert result["benchmark"] == "gcc" and result["cycles"] > 0
        assert [c["core"] for c in store.result(sweep)["cells"]] == [
            "braid", "inorder"
        ]
        store.close()

    def test_identical_jobs_run_once(self, tmp_path):
        store = JobStore(tmp_path / "store")
        first = submit(store, "simulate",
                       {"benchmark": "gcc", "core": "braid"}, client="a")
        second = submit(store, "simulate",
                        {"benchmark": "gcc", "core": "braid"}, client="b")
        assert first == second
        serve(store, batch_config())
        counters = store.counters()
        assert counters["completed"] == 1 and counters["coalesced"] == 1
        store.close()

    def test_rerun_is_bit_identical(self, tmp_path):
        import json

        results = []
        for run in ("a", "b"):
            store = JobStore(tmp_path / run)
            job = submit(store, "simulate",
                         {"benchmark": "mcf", "core": "ooo"})
            serve(store, batch_config())
            results.append(json.dumps(store.result(job), sort_keys=True))
            store.close()
        assert results[0] == results[1]

    def test_drain_request_stops_the_loop(self, tmp_path):
        store = JobStore(tmp_path / "store")
        supervisor = Supervisor(store, ServiceConfig())
        supervisor.request_drain()
        summary = supervisor.run()
        assert summary["drained"] is True
        assert store.journal.records[-1]["event"] == "drain"
        assert (tmp_path / "store" / "state.json").exists()
        store.close()


class TestFailureClassification:
    def test_task_error_fails_permanently_without_retries(self, tmp_path):
        store = JobStore(tmp_path / "store")
        # Bypass normalize_params: the executor hits a missing key,
        # which is a deterministic task bug, not infrastructure.
        job_id, _ = store.submit(JobRequest(
            kind="simulate", params={"benchmark": "gcc", "core": "braid"},
        ))
        serve(store, batch_config())
        job = store.job(job_id)
        assert job.status == FAILED and job.permanent
        assert job.attempts == 1
        assert "KeyError" in job.error
        store.close()

    def test_enospc_on_result_write_requeues_then_succeeds(
        self, tmp_path, monkeypatch
    ):
        store = JobStore(tmp_path / "store")
        job_id = submit(store, "simulate",
                        {"benchmark": "gcc", "core": "braid"})
        spec = ChaosSpec(fail_write={job_id: 1})
        for name, value in spec.environ(tmp_path / "marks").items():
            monkeypatch.setenv(name, value)
        serve(store, batch_config())
        job = store.job(job_id)
        assert job.status == DONE
        counters = store.counters()
        assert counters["requeued"] == 1 and counters["completed"] == 1
        store.close()

    def test_exhausted_retry_budget_retires_the_job(self, tmp_path):
        store = JobStore(tmp_path / "store")
        job_id = submit(store, "simulate",
                        {"benchmark": "gcc", "core": "braid"})
        # Simulate a job that transient failures kept requeueing until
        # its whole attempt budget was burned.
        policy = RetryPolicy(max_attempts=3)
        store.claim(job_id)
        store.requeue(job_id, "result store write failed: disk full",
                      attempts=policy.max_attempts)
        serve(store, batch_config(policy=policy))
        job = store.job(job_id)
        assert job.status == FAILED and not job.permanent
        assert "retry budget exhausted" in job.error
        store.close()


class TestRecovery:
    def test_serve_recovers_jobs_a_dead_supervisor_left_running(
        self, tmp_path
    ):
        store = JobStore(tmp_path / "store")
        job_id = submit(store, "simulate",
                        {"benchmark": "gcc", "core": "braid"})
        store.claim(job_id)
        store.close()  # the supervisor "dies" here
        reopened = JobStore(tmp_path / "store")
        summary = serve(reopened, batch_config())
        assert summary["recovery"]["interrupted"] == [job_id]
        job = reopened.job(job_id)
        assert job.status == DONE and job.recovered == 1
        assert reopened.result(job_id)["cycles"] > 0
        reopened.close()

    def test_serve_heals_a_corrupted_result(self, tmp_path):
        store = JobStore(tmp_path / "store")
        job_id = submit(store, "simulate",
                        {"benchmark": "gcc", "core": "braid"})
        serve(store, batch_config())
        good = store.result(job_id)
        key = store._result_key(store.job(job_id).key)
        store.results.path_for(key).write_bytes(b"\x00 corrupt \x00")
        store.close()
        reopened = JobStore(tmp_path / "store")
        summary = serve(reopened, batch_config())
        assert summary["recovery"]["lost_results"] == [job_id]
        # Deterministic re-run: the healed payload is bit-identical.
        assert reopened.result(job_id) == good
        assert reopened.results.stats()["quarantined"] == 1
        reopened.close()


class TestTelemetry:
    def test_serve_publishes_store_and_cache_counters(self, tmp_path):
        store = JobStore(tmp_path / "store")
        submit(store, "simulate", {"benchmark": "gcc", "core": "braid"})
        supervisor = Supervisor(store, batch_config())
        supervisor.run()
        counters = supervisor.telemetry.counters
        assert counters["service.jobs_completed"] == 1
        assert counters["service.completed"] == 1
        assert "service.results.hits" in counters
        assert "service.results.evictions" in counters
        store.close()
