"""Tests for the braid core's exception mode (§3.4) and clustering (§5.2)."""

from dataclasses import replace

import pytest

from repro.core import braidify
from repro.sim import braid_config, inorder_config, prepare_workload, simulate
from repro.sim.run import build_core
from repro.workloads import build_program


@pytest.fixture(scope="module")
def braided_gcc():
    program = build_program("gcc")
    compilation = braidify(program)
    return prepare_workload(compilation.translated)


class TestExceptionMode:
    def test_exception_mode_is_correct(self, braided_gcc):
        config = replace(
            braid_config(8), beu_exception_mode=True, name="braid-excmode"
        )
        result = simulate(braided_gcc, config)
        assert result.instructions == len(braided_gcc.trace)

    def test_exception_mode_serializes(self, braided_gcc):
        normal = simulate(braided_gcc, braid_config(8))
        exception = simulate(
            braided_gcc,
            replace(braid_config(8), beu_exception_mode=True,
                    name="braid-excmode"),
        )
        # "forcing instructions to one BEU turns the processor into a
        # strict in-order processor" — far slower than normal operation.
        assert exception.ipc < normal.ipc * 0.7

    def test_exception_mode_uses_one_beu(self, braided_gcc):
        config = replace(
            braid_config(8), beu_exception_mode=True, name="braid-excmode"
        )
        core = build_core(braided_gcc, config)
        core.run()
        issued = core.beu_utilization()
        assert issued[0] == len(braided_gcc.trace)
        assert all(count == 0 for count in issued[1:])

    def test_exception_mode_close_to_inorder(self, braided_gcc):
        # The paper's claim: exception mode ~= an in-order machine.
        exception = simulate(
            braided_gcc,
            replace(braid_config(8), beu_exception_mode=True,
                    name="braid-excmode"),
        )
        program = build_program("gcc")
        inorder = simulate(prepare_workload(program), inorder_config(8))
        assert exception.ipc == pytest.approx(inorder.ipc, rel=0.6)


class TestClustering:
    def test_clustering_is_correct(self, braided_gcc):
        config = replace(
            braid_config(8), beu_cluster_size=2, inter_cluster_delay=2,
            name="braid-clustered",
        )
        result = simulate(braided_gcc, config)
        assert result.instructions == len(braided_gcc.trace)

    def test_cross_cluster_delay_costs_performance(self, braided_gcc):
        flat = simulate(braided_gcc, braid_config(8))
        clustered = simulate(
            braided_gcc,
            replace(braid_config(8), beu_cluster_size=2,
                    inter_cluster_delay=4, name="braid-cl2d4"),
        )
        assert clustered.ipc <= flat.ipc

    def test_whole_machine_cluster_is_free(self, braided_gcc):
        flat = simulate(braided_gcc, braid_config(8))
        one_cluster = simulate(
            braided_gcc,
            replace(braid_config(8), beu_cluster_size=8,
                    inter_cluster_delay=4, name="braid-cl8"),
        )
        assert one_cluster.cycles == flat.cycles

    def test_delay_scales_cost(self, braided_gcc):
        small = simulate(
            braided_gcc,
            replace(braid_config(8), beu_cluster_size=2,
                    inter_cluster_delay=1, name="braid-cl2d1"),
        )
        large = simulate(
            braided_gcc,
            replace(braid_config(8), beu_cluster_size=2,
                    inter_cluster_delay=8, name="braid-cl2d8"),
        )
        assert large.cycles >= small.cycles
