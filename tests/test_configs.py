"""Tests that machine configurations match paper Table 4."""

from repro.sim.config import (
    CoreKind,
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
)


class TestOutOfOrderDefaults:
    def test_table4_parameters(self):
        config = ooo_config(8)
        assert config.kind is CoreKind.OUT_OF_ORDER
        assert config.issue_width == 8
        assert config.clusters == 8 and config.cluster_entries == 32
        assert config.regfile.entries == 256
        assert config.regfile.read_ports == 16
        assert config.regfile.write_ports == 8
        assert config.bypass_levels == 3 and config.bypass_width == 8
        assert config.functional_units == 8
        assert config.front_end.fetch_width == 8
        assert config.front_end.branches_per_cycle == 3
        assert config.front_end.alloc_width == 8
        assert config.front_end.rename_src_ops == 16
        assert config.front_end.rename_dest_ops == 8

    def test_mispredict_penalty_is_23(self):
        assert ooo_config(8).front_end.min_mispredict_penalty == 23

    def test_width_scaling(self):
        config = ooo_config(16)
        assert config.clusters == 16
        assert config.regfile.entries == 512
        assert config.front_end.rename_src_ops == 32


class TestBraidDefaults:
    def test_table4_parameters(self):
        config = braid_config(8)
        assert config.kind is CoreKind.BRAID
        assert config.clusters == 8  # BEUs
        assert config.cluster_entries == 32  # FIFO entries
        assert config.beu_window == 2
        assert config.beu_functional_units == 2
        assert config.internal_regfile.entries == 8
        assert config.internal_regfile.read_ports == 4
        assert config.internal_regfile.write_ports == 2
        assert config.regfile.entries == 8
        assert config.regfile.read_ports == 6
        assert config.regfile.write_ports == 3
        assert config.bypass_levels == 1 and config.bypass_width == 2
        assert config.front_end.alloc_width == 4
        assert config.front_end.rename_src_ops == 8
        assert config.front_end.rename_dest_ops == 4

    def test_mispredict_penalty_is_19(self):
        assert braid_config(8).front_end.min_mispredict_penalty == 19

    def test_pipeline_four_stages_shorter(self):
        assert (
            ooo_config(8).front_end.min_mispredict_penalty
            - braid_config(8).front_end.min_mispredict_penalty
            == 4
        )

    def test_sixteen_functional_units_total(self):
        config = braid_config(8)
        assert config.clusters * config.beu_functional_units == 16

    def test_single_braid_per_beu_default(self):
        assert not braid_config(8).beu_queue_braids


class TestOtherParadigms:
    def test_inorder_shares_conventional_front_end(self):
        config = inorder_config(8)
        assert config.kind is CoreKind.IN_ORDER
        assert config.front_end.min_mispredict_penalty == 23

    def test_depsteer_fifo_geometry(self):
        config = depsteer_config(8)
        assert config.kind is CoreKind.DEP_STEER
        assert config.clusters == 8
        assert config.cluster_entries == 32

    def test_overrides(self):
        config = braid_config(8, clusters=4)
        assert config.clusters == 4
        assert config.beu_window == 2

    def test_renamed(self):
        assert ooo_config(8).renamed("x").name == "x"

    def test_shared_memory_hierarchy(self):
        for factory in (ooo_config, braid_config, inorder_config, depsteer_config):
            config = factory(8)
            assert config.memory.l2_size == 1024 * 1024
            assert config.memory.memory_latency == 400
