"""Unit tests for braid register allocation (both passes)."""

import pytest

from repro.core import braidify
from repro.core.regalloc import compact_external_registers
from repro.isa import assemble
from repro.isa.registers import NUM_INTERNAL_REGS, Space
from repro.sim import execute, observably_equivalent
from repro.workloads import kernel


class TestInternalAllocation:
    def test_internal_destinations_use_small_indices(self, gcc_life_compiled):
        for block in gcc_life_compiled.translated.blocks:
            for inst in block.instructions:
                if inst.annot.dest_internal:
                    assert inst.dest.index < NUM_INTERNAL_REGS

    def test_internal_sources_use_small_indices(self, gcc_life_compiled):
        for block in gcc_life_compiled.translated.blocks:
            for inst in block.instructions:
                for position, reg in enumerate(inst.srcs):
                    if inst.annot.src_space(position) is Space.INTERNAL:
                        assert reg.index < NUM_INTERNAL_REGS

    def test_never_both_internal_and_external(self, gcc_life_compiled):
        # This allocator's policy: a value lives in exactly one space.
        for block in gcc_life_compiled.translated.blocks:
            for inst in block.instructions:
                assert not (
                    inst.annot.dest_internal and inst.annot.dest_external
                )

    def test_escaping_values_stay_external(self, gcc_life_compiled):
        # The induction variable (r5) and loop bound compare flag (r7) are
        # read in later blocks, so their defs must write the external file.
        loop = gcc_life_compiled.translated.block_by_label("LOOP")
        by_name = {}
        for inst in loop.instructions:
            by_name.setdefault(inst.opcode.name, inst)
        assert by_name["addli"].annot.dest_external  # r5 next iteration
        assert by_name["cmpeq"].annot.dest_external  # r7 read by BACK block

    def test_purely_local_values_are_internal(self, gcc_life_compiled):
        loop = gcc_life_compiled.translated.block_by_label("LOOP")
        internal = [
            inst for inst in loop.instructions if inst.annot.dest_internal
        ]
        # The three loads and the mask chain stay inside the braid.
        assert len(internal) >= 4

    def test_consumer_of_internal_value_uses_t_bit(self, gcc_life_compiled):
        loop = gcc_life_compiled.translated.block_by_label("LOOP")
        internal_uses = sum(
            1
            for inst in loop.instructions
            for position in range(len(inst.srcs))
            if inst.annot.src_space(position) is Space.INTERNAL
        )
        assert internal_uses >= 4

    def test_tight_limit_still_allocates(self, gcc_life):
        compilation = braidify(gcc_life, internal_limit=2)
        assert observably_equivalent(gcc_life, compilation.translated)
        for block in compilation.translated.blocks:
            for inst in block.instructions:
                if inst.annot.dest_internal:
                    assert inst.dest.index < 2


class TestExternalCompaction:
    SOURCE = """
    .block A
        addq r31, #1, r1
        addq r31, #2, r5
        addq r1, r5, r9
        stq r9, 0(r1)
    .block B
        addq r31, #3, r20
        stq r20, 8(r20)
        nop
    """

    def test_compaction_reduces_register_count(self):
        program = assemble(self.SOURCE)
        result = compact_external_registers(program)
        assert result.registers_after <= result.registers_before
        # r20's live range does not overlap r1/r5/r9 wholesale names: at
        # least one merge must happen.
        assert result.registers_after < result.registers_before

    def test_compaction_preserves_semantics(self):
        program = assemble(self.SOURCE)
        result = compact_external_registers(program)
        state_a, _ = execute(program)
        state_b, _ = execute(result.program)
        assert state_a.memory == state_b.memory

    def test_compaction_on_kernels_is_sound(self):
        for name in ("gcc_life", "daxpy", "checksum"):
            program = kernel(name)
            result = compact_external_registers(program)
            state_a, stats_a = execute(program)
            state_b, stats_b = execute(result.program)
            assert state_a.memory == state_b.memory
            assert stats_a.block_counts == stats_b.block_counts

    def test_zero_register_never_remapped(self):
        program = assemble(self.SOURCE)
        result = compact_external_registers(program)
        for source, target in result.mapping.items():
            if source.is_zero:
                assert target is source

    def test_full_pipeline_with_compaction(self, gcc_life):
        compilation = braidify(gcc_life, compact_external=True)
        assert compilation.compaction is not None
        # Equivalence is judged against the compacted program (the rename
        # intentionally changes which architectural registers hold values).
        assert observably_equivalent(
            compilation.compaction.program, compilation.translated
        )


class TestDeadValues:
    def test_dead_value_parked_internally(self):
        program = assemble(
            """
            .block A
                addq r1, r2, r9    ; never read anywhere
                addq r1, r2, r3
                stq r3, 0(r1)
            """
        )
        compilation = braidify(program)
        block = compilation.translated.blocks[0]
        dead = next(
            inst for inst in block.instructions
            if inst.opcode.name == "addq" and not inst.annot.dest_external
        )
        assert dead.annot.dest_internal
        assert observably_equivalent(program, compilation.translated)
