"""Transient-fault injection subsystem (repro.faults).

Covers the full stack the AVF figure rests on: the retirement-hang
watchdog in the timing core, the per-structure injectors and the
four-way outcome taxonomy, campaign determinism, the crash-safe resume
journal, quarantine semantics, the AVF aggregation, and the ``faults``
CLI command.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.analysis import avf_report, storage_bits
from repro.analysis.avf import StructureAVF
from repro.faults import (
    CampaignError,
    CampaignSpec,
    FaultOutcome,
    FaultSession,
    INJECTORS,
    InjectionResult,
    InjectorError,
    injectors_for,
    plan_tasks,
    run_campaign,
    run_injection,
    structures_for,
)
from repro.faults.campaign import CampaignJournal
from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.sim.config import (
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
)
from repro.sim.registry import core_registry
from repro.sim.core import SimulationHang
from repro.sim.run import build_core


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        benchmarks=("gcc",),
        max_instructions=20_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


@pytest.fixture(scope="module")
def ooo_setup(ctx):
    """Workload, hang-bounded config, and fault-free baseline cycles."""
    workload = ctx.workload("gcc")
    config = replace(ooo_config(), max_idle_cycles=2_000)
    baseline = build_core(workload, config).run().cycles
    return workload, config, baseline


class TestHangWatchdog:
    def test_wedged_core_raises_diagnostic_hang(self, ctx):
        config = replace(inorder_config(), max_idle_cycles=500)
        core = build_core(ctx.workload("gcc"), config)
        # Wedge the machine: nothing ever issues, so nothing completes
        # and retirement stops dead while fetch/dispatch fill up.
        core.issue_stage = lambda cycle: None
        with pytest.raises(SimulationHang) as excinfo:
            core.run()
        hang = excinfo.value
        assert hang.machine == config.name
        assert hang.benchmark == "gcc"
        assert hang.retired == 0
        assert hang.target == len(ctx.workload("gcc").trace)
        assert hang.idle_cycles > 500
        assert hang.in_flight["rob"] > 0
        assert "WInst" in hang.rob_head
        for needle in ("no retirement", "rob=", "ROB head"):
            assert needle in str(hang)

    def test_clean_run_passes_tight_watchdog(self, ctx):
        # A healthy core retires continuously; even a tight idle window
        # must never false-positive.
        config = replace(ooo_config(), max_idle_cycles=500)
        result = build_core(ctx.workload("gcc"), config).run()
        assert result.instructions == len(ctx.workload("gcc").trace)

    def test_watchdog_fires_in_checked_loop_too(self, ctx):
        config = replace(inorder_config(), max_idle_cycles=500)
        core = build_core(ctx.workload("gcc"), config)
        core.issue_stage = lambda cycle: None
        core.fault_hook = lambda c, cycle: None  # forces the checked loop
        with pytest.raises(SimulationHang):
            core.run()


class TestInjectorRegistry:
    def test_structures_match_core_paradigm(self):
        braid = structures_for(braid_config().kind)
        assert "beu_fifo" in braid and "partition" in braid
        assert "scheduler" not in braid
        for factory in (ooo_config, inorder_config, depsteer_config):
            conventional = structures_for(factory().kind)
            assert "scheduler" in conventional
            assert "beu_fifo" not in conventional
        # every braid structure resolves to an injector: commons from the
        # shared table, paradigm-specific ones from the class declaration
        assert set(braid) <= set(injectors_for(braid_config().kind))

    def test_storage_bits_cover_every_injectable_structure(self):
        for descriptor in core_registry().values():
            config = descriptor.config_factory()
            bits = storage_bits(config)
            for structure in structures_for(config.kind):
                assert bits.get(structure, 0) > 0, (config.name, structure)

    def test_unknown_structure_rejected(self):
        import random

        with pytest.raises(InjectorError):
            FaultSession("tlb", 0, random.Random(0))

    def test_kind_mismatch_rejected(self, ctx):
        import random

        core = build_core(ctx.workload("gcc"), ooo_config())
        session = FaultSession("beu_fifo", 0, random.Random(0))
        with pytest.raises(InjectorError):
            session.attach(core)


class TestRunInjection:
    # Pinned (structure, seed) cells exercising every branch of the
    # taxonomy on the gcc workload with max_idle_cycles=2000.  The
    # workload generator and injectors are deterministic, so these are
    # stable; if a simulator change legitimately shifts them, re-pin.
    TAXONOMY = [
        ("rob", 0, FaultOutcome.MASKED),
        ("rob", 1, FaultOutcome.SDC),
        ("rob", 4, FaultOutcome.HANG),
        ("regfile", 2, FaultOutcome.CRASH),
    ]

    @pytest.mark.parametrize("structure, seed, expected", TAXONOMY)
    def test_taxonomy_outcomes(self, ooo_setup, structure, seed, expected):
        workload, config, baseline = ooo_setup
        result = run_injection(workload, config, structure, seed, baseline)
        assert result.outcome is expected
        assert result.injected
        assert result.applied_cycle is not None
        assert result.detail
        if expected is FaultOutcome.MASKED:
            assert result.error is None
        else:
            assert result.error

    def test_deterministic_for_fixed_seed(self, ooo_setup):
        workload, config, baseline = ooo_setup
        first = run_injection(workload, config, "rob", 1, baseline)
        second = run_injection(workload, config, "rob", 1, baseline)
        assert first == second  # frozen dataclass: full field equality

    def test_runs_are_independent(self, ooo_setup):
        # An SDC run must not corrupt the shared workload: a fault-free
        # run afterwards still matches the baseline exactly.
        workload, config, baseline = ooo_setup
        run_injection(workload, config, "rob", 1, baseline)
        assert build_core(workload, config).run().cycles == baseline

    def test_never_live_target_is_masked_not_injected(self, ooo_setup):
        workload, config, baseline = ooo_setup
        import random

        core = build_core(workload, config)
        session = FaultSession(
            "rob", 10 ** 9, random.Random(0)
        ).attach(core)
        result = core.run()
        assert not session.injected
        assert result.cycles == baseline  # checked loop is timing-identical

    def test_result_json_roundtrip(self, ooo_setup):
        workload, config, baseline = ooo_setup
        result = run_injection(workload, config, "rob", 4, baseline)
        assert InjectionResult.from_json(result.to_json()) == result
        assert json.dumps(result.to_json())  # JSON-serializable end to end


def _small_spec(**overrides):
    base = dict(
        benchmarks=("gcc",),
        cores=("ooo",),
        structures=("rob", "regfile"),
        runs=3,
        seed=7,
        hang_cycles=2_000,
        jobs=1,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestCampaign:
    def test_spec_validation(self):
        with pytest.raises(CampaignError):
            _small_spec(cores=("vliw",)).validate()
        with pytest.raises(CampaignError):
            _small_spec(structures=("tlb",)).validate()
        with pytest.raises(CampaignError):
            _small_spec(runs=0).validate()
        _small_spec().validate()

    def test_plan_covers_grid_in_order(self):
        spec = _small_spec()
        tasks = plan_tasks(spec)
        assert len(tasks) == 2 * spec.runs
        assert tasks[0].task_id == "gcc/ooo/rob/0"
        assert len({task.task_id for task in tasks}) == len(tasks)

    def test_campaign_classifies_everything(self, ctx, tmp_path):
        spec = _small_spec()
        report = run_campaign(
            ctx, spec, journal_path=tmp_path / "j.jsonl"
        )
        assert report.passed
        results = report.results
        assert len(results) == 2 * spec.runs
        for result in results:
            assert result.outcome in FaultOutcome
        assert "CAMPAIGN COMPLETE" in report.render()

    def test_same_seed_reports_are_bit_identical(self, ctx, tmp_path):
        spec = _small_spec()
        first = run_campaign(ctx, spec, journal_path=tmp_path / "a.jsonl")
        second = run_campaign(ctx, spec, journal_path=tmp_path / "b.jsonl")
        assert first.render() == second.render()

    def test_resume_skips_completed_tasks(self, ctx, tmp_path, monkeypatch):
        spec = _small_spec()
        journal = tmp_path / "resume.jsonl"
        full = run_campaign(ctx, spec, journal_path=journal)
        full_render = full.render()

        # Simulate a mid-campaign SIGKILL: keep the header plus the
        # first three fsynced records, tear the rest away.
        lines = journal.read_text().splitlines()
        keep = 1 + 3
        journal.write_text("\n".join(lines[:keep]) + "\n")

        executed = []
        import repro.faults.campaign as campaign_module

        real = campaign_module.run_injection

        def counting(workload, config, structure, seed, baseline_cycles,
                     max_cycles=None):
            executed.append(structure)
            return real(workload, config, structure, seed, baseline_cycles,
                        max_cycles)

        monkeypatch.setattr(campaign_module, "run_injection", counting)
        resumed = run_campaign(
            ctx, spec, journal_path=journal, resume=True
        )
        assert resumed.resumed == 3
        assert len(executed) == 2 * spec.runs - 3
        assert resumed.render() != full_render  # mentions the resume...
        assert "resumed: 3" in resumed.render()
        # ...but classifies the identical grid.
        assert resumed.results == full.results

    def test_resume_tolerates_torn_tail(self, ctx, tmp_path):
        spec = _small_spec()
        journal = tmp_path / "torn.jsonl"
        run_campaign(ctx, spec, journal_path=journal)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"task": "gcc/ooo/rob/0", "sta')  # mid-write kill
        report = run_campaign(ctx, spec, journal_path=journal, resume=True)
        assert report.passed

    def test_resume_refuses_foreign_journal(self, ctx, tmp_path):
        journal = tmp_path / "foreign.jsonl"
        run_campaign(ctx, _small_spec(), journal_path=journal)
        with pytest.raises(CampaignError) as excinfo:
            run_campaign(
                ctx, _small_spec(seed=8), journal_path=journal, resume=True
            )
        assert "different campaign" in str(excinfo.value)

    def test_without_resume_journal_is_overwritten(self, ctx, tmp_path):
        journal = tmp_path / "fresh.jsonl"
        run_campaign(ctx, _small_spec(), journal_path=journal)
        # A different grid may reuse the path when not resuming.
        report = run_campaign(ctx, _small_spec(seed=8), journal_path=journal)
        assert report.passed and report.resumed == 0

    def test_infrastructure_failure_quarantines_not_aborts(
        self, ctx, tmp_path, monkeypatch
    ):
        import repro.faults.campaign as campaign_module

        real = campaign_module.run_injection

        def flaky(workload, config, structure, seed, baseline_cycles,
                  max_cycles=None):
            if structure == "regfile":
                raise InjectorError("injector lost the structure")
            return real(workload, config, structure, seed, baseline_cycles,
                        max_cycles)

        monkeypatch.setattr(campaign_module, "run_injection", flaky)
        spec = _small_spec()
        report = run_campaign(ctx, spec, journal_path=tmp_path / "q.jsonl")
        assert not report.passed
        assert len(report.quarantined) == spec.runs
        assert len(report.results) == spec.runs  # rob cells still classified
        text = report.render()
        assert "CAMPAIGN INCOMPLETE" in text
        assert "quarantined tasks" in text
        assert "injector lost the structure" in text

    def test_journal_records_are_fsynced_json_lines(self, ctx, tmp_path):
        spec = _small_spec(runs=1)
        journal = tmp_path / "lines.jsonl"
        run_campaign(ctx, spec, journal_path=journal)
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "faults-journal"
        assert header["digest"] == spec.digest()
        records = [json.loads(line) for line in lines[1:]]
        assert {record["task"] for record in records} == {
            task.task_id for task in plan_tasks(spec)
        }

    def test_journal_header_must_parse(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        with pytest.raises(CampaignError):
            CampaignJournal(path, digest="abc", resume=True)


class TestAVFAnalysis:
    def test_avf_is_non_masked_fraction(self):
        row = StructureAVF(
            machine="m", structure="rob", bits=100,
            counts={"masked": 6, "sdc": 2, "crash": 1, "hang": 1},
        )
        assert row.injections == 10
        assert row.avf == pytest.approx(0.4)
        assert row.weighted == pytest.approx(40.0)

    def test_report_aggregates_and_ranks(self):
        def result(machine, structure, outcome):
            return InjectionResult(
                benchmark="gcc", machine=machine, structure=structure,
                seed=0, outcome=FaultOutcome(outcome), injected=True,
                applied_cycle=1, detail="x",
            )

        results = (
            [result("ooo-8w", "rob", "sdc")] * 3
            + [result("ooo-8w", "rob", "masked")]
            + [result("braid-8w", "rob", "masked")] * 4
        )
        report = avf_report(
            results, {"ooo-8w": ooo_config(), "braid-8w": braid_config()}
        )
        by_key = {(r.machine, r.structure): r for r in report.rows}
        assert by_key[("ooo-8w", "rob")].avf == pytest.approx(0.75)
        assert by_key[("braid-8w", "rob")].avf == 0.0
        summary = dict(
            (machine, avf) for machine, avf, _ in report.machine_summary()
        )
        assert summary["braid-8w"] < summary["ooo-8w"]
        text = report.render()
        assert "most vulnerable structures" in text
        assert "bit-weighted machine vulnerability" in text
        assert "ooo-8w rob" in text

    def test_render_is_deterministic_under_shuffled_input(self):
        def result(machine, structure):
            return InjectionResult(
                benchmark="gcc", machine=machine, structure=structure,
                seed=0, outcome=FaultOutcome.MASKED, injected=True,
                applied_cycle=1, detail="x",
            )

        configs = {"ooo-8w": ooo_config()}
        forward = [result("ooo-8w", s) for s in ("rob", "lsq", "regfile")]
        assert (
            avf_report(forward, configs).render()
            == avf_report(list(reversed(forward)), configs).render()
        )


class TestFaultsCli:
    CLI = [
        "faults", "--benchmarks", "gcc", "--cores", "ooo",
        "--structures", "rob,regfile", "--runs", "2", "--seed", "7",
        "--scale", "0.2", "--jobs", "1", "--no-cache",
    ]

    def test_smoke_and_determinism(self, capsys, tmp_path):
        code = main_faults(self.CLI + ["--journal", str(tmp_path / "a.jsonl")])
        first = capsys.readouterr().out
        assert code == 0
        assert "CAMPAIGN COMPLETE" in first
        assert "per-structure architectural vulnerability" in first
        code = main_faults(self.CLI + ["--journal", str(tmp_path / "b.jsonl")])
        second = capsys.readouterr().out
        assert code == 0
        assert first == second

    def test_cannot_mix_with_experiments(self):
        with pytest.raises(SystemExit):
            main_faults(["faults", "T1"])

    def test_unknown_core_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main_faults([
                "faults", "--cores", "vliw", "--no-cache",
                "--journal", str(tmp_path / "x.jsonl"),
            ])


def main_faults(argv):
    from repro.harness.__main__ import main

    return main(argv)
