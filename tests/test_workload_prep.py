"""Tests for prepared workloads (phase-one oracles)."""

import pickle

import pytest

from repro.sim.workload import decode_trace, prepare_workload
from repro.workloads import build_program, kernel


@pytest.fixture(scope="module")
def gcc():
    return build_program("gcc")


class TestPreparation:
    def test_trace_matches_functional_length(self, gcc):
        workload = prepare_workload(gcc)
        assert len(workload) == workload.stats.dynamic_instructions
        assert len(workload.trace) > 0

    def test_deterministic(self, gcc):
        a = prepare_workload(gcc)
        b = prepare_workload(gcc)
        assert a.mispredicted == b.mispredicted
        assert a.load_latency == b.load_latency

    def test_mispredicted_are_branches(self, gcc):
        workload = prepare_workload(gcc)
        by_seq = {d.seq: d for d in workload.trace}
        for seq in workload.mispredicted:
            assert by_seq[seq].is_branch

    def test_load_latencies_cover_all_loads(self, gcc):
        workload = prepare_workload(gcc)
        loads = [d for d in workload.trace if d.is_load]
        assert len(loads) == len(workload.load_latency)
        l1 = 3
        for latency in workload.load_latency.values():
            assert latency >= l1

    def test_stats_populated(self, gcc):
        workload = prepare_workload(gcc)
        assert workload.stats.branches > 0
        assert 0.0 <= workload.stats.branch_accuracy <= 1.0
        assert workload.stats.mispredicts == len(workload.mispredicted)

    def test_instruction_cap(self, gcc):
        workload = prepare_workload(gcc, max_instructions=500)
        assert len(workload) == 500


class TestPerfectMode:
    def test_no_mispredictions(self, gcc):
        workload = prepare_workload(gcc, perfect=True)
        assert workload.mispredicted == set()

    def test_flat_l1_latencies(self, gcc):
        workload = prepare_workload(gcc, perfect=True)
        assert set(workload.load_latency.values()) <= {3}
        assert workload.ifetch_extra == {}


class TestPredictorChoice:
    def test_bimodal_usually_worse_or_equal(self, gcc):
        perceptron = prepare_workload(gcc, predictor="perceptron")
        taken = prepare_workload(gcc, predictor="taken")
        assert len(perceptron.mispredicted) <= len(taken.mispredicted)

    def test_kernel_loop_branches_learnable(self):
        workload = prepare_workload(kernel("daxpy"))
        # One perfectly-biased loop branch: only warm-up mispredicts.
        assert workload.stats.branch_accuracy > 0.9


class TestSerialization:
    """Workloads travel through the artifact cache and worker specs pickled."""

    def test_pickle_round_trip_preserves_oracles(self, gcc):
        workload = prepare_workload(gcc, max_instructions=5_000)
        clone = pickle.loads(pickle.dumps(workload))
        assert len(clone) == len(workload)
        assert clone.mispredicted == workload.mispredicted
        assert clone.load_latency == workload.load_latency
        assert clone.ifetch_extra == workload.ifetch_extra
        assert [d.seq for d in clone.trace] == [d.seq for d in workload.trace]

    def test_pickle_round_trip_preserves_decode(self, gcc):
        workload = prepare_workload(gcc, max_instructions=5_000)
        workload.decode()
        clone = pickle.loads(pickle.dumps(workload))
        assert clone.decoded is not None
        for ours, theirs in zip(workload.decoded, clone.decoded):
            assert ours.latency == theirs.latency
            assert ours.src_keys == theirs.src_keys
            assert ours.written_key == theirs.written_key

    def test_decode_trace_shares_static_facts(self, gcc):
        workload = prepare_workload(gcc, max_instructions=5_000)
        decoded = decode_trace(workload.trace)
        assert len(decoded) == len(workload.trace)
        by_static = {}
        for dyn, facts in zip(workload.trace, decoded):
            assert by_static.setdefault(id(dyn.inst), facts) is facts
        # Sharing is the point: far fewer decode objects than trace entries.
        assert len(by_static) < len(decoded)

    def test_decode_memoized_on_workload(self, gcc):
        workload = prepare_workload(gcc, max_instructions=5_000)
        assert workload.decode() is workload.decode()


class TestMemoryBehaviour:
    def test_cache_hostile_benchmark_misses_more(self):
        friendly = prepare_workload(build_program("gzip"))
        hostile = prepare_workload(build_program("mcf"))
        assert hostile.stats.l1d_miss_rate > friendly.stats.l1d_miss_rate

    def test_icache_warm_after_first_touch(self, gcc):
        workload = prepare_workload(gcc)
        # Static code is tiny vs 64KB L1I: only cold misses.
        assert len(workload.ifetch_extra) < len(workload.trace) * 0.02
