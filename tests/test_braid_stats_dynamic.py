"""Dynamic (execution-weighted) braid statistics cross-checks.

Tables 1-3 are computed statically; these tests confirm the *dynamic*
picture a timing run sees is consistent with the static statistics — the
property that actually matters to the microarchitecture (the distribute
stage sees braids at their dynamic frequency).
"""

from collections import Counter

import pytest

from repro.core import braidify
from repro.sim import braid_config, prepare_workload
from repro.sim.run import build_core
from repro.workloads import build_program


@pytest.fixture(scope="module")
def traced():
    program = build_program("gcc")
    compilation = braidify(program)
    workload = prepare_workload(compilation.translated, max_instructions=8000)
    core = build_core(workload, braid_config(8))
    core.trace_log = []
    core.run()
    return compilation, core


class TestDynamicBraidShape:
    def _dynamic_braids(self, core):
        """Split the dynamic trace at S bits into braid instances."""
        braids = []
        current = []
        for winst in core.trace_log:
            if winst.dyn.inst.annot.start and current:
                braids.append(current)
                current = []
            current.append(winst)
        if current:
            braids.append(current)
        return braids

    def test_dynamic_braid_sizes_match_static_range(self, traced):
        compilation, core = traced
        dynamic = self._dynamic_braids(core)
        sizes = [len(b) for b in dynamic]
        static_sizes = {
            braid.size
            for translation in compilation.report.blocks
            for braid in translation.braids
        }
        assert set(sizes) <= static_sizes

    def test_dynamic_mean_size_close_to_paper_band(self, traced):
        _, core = traced
        dynamic = self._dynamic_braids(core)
        mean = sum(len(b) for b in dynamic) / len(dynamic)
        assert 1.5 <= mean <= 6.0  # paper int range around 2.3-3.4

    def test_each_dynamic_braid_on_one_beu(self, traced):
        _, core = traced
        for braid in self._dynamic_braids(core):
            assert len({w.cluster for w in braid}) == 1

    def test_braid_instances_per_beu_are_balanced(self, traced):
        _, core = traced
        counts = Counter(
            w.cluster for w in core.trace_log if w.dyn.inst.annot.start
        )
        values = sorted(counts.values())
        assert len(values) >= 4
        assert values[0] > 0

    def test_99_percent_of_braids_fit_fifo(self, traced):
        # The paper sizes the FIFO at 32 because 99% of braids fit.
        _, core = traced
        dynamic = self._dynamic_braids(core)
        fitting = sum(1 for b in dynamic if len(b) <= 32)
        assert fitting / len(dynamic) > 0.99
