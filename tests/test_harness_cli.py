"""Tests for the command-line experiment runner."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_runs_one_experiment(self, capsys):
        assert main(["T1", "--benchmarks", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "T1: braids per basic block" in out
        assert "gcc" in out

    def test_multiple_experiments(self, capsys):
        assert main(["T2", "T3", "--benchmarks", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "T2" in out and "T3" in out

    def test_quick_selector(self, capsys):
        assert main(["T1", "--benchmarks", "quick"]) == 0
        out = capsys.readouterr().out
        assert "equake" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["F99", "--benchmarks", "gcc"])

    def test_scale_flag(self, capsys):
        assert main(["T1", "--benchmarks", "gcc", "--scale", "0.5"]) == 0

    def test_sample_spec_rejected_when_malformed(self):
        with pytest.raises(SystemExit):
            main(["T1", "--benchmarks", "gcc", "--sample", "stride=fast"])
        with pytest.raises(SystemExit):
            main(["T1", "--benchmarks", "gcc", "--sample", "cadence=5"])

    def test_sample_flag_threads_through(self, capsys):
        # T1 is a static-analysis table, so this exercises only the
        # plumbing: --sample parses and the context accepts it.
        assert main(["T1", "--benchmarks", "gcc", "--sample"]) == 0
        assert main(
            ["T1", "--benchmarks", "gcc", "--sample", "stride=4,seed=2"]
        ) == 0


class TestCacheCommands:
    def test_cache_info_reports(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache-info"]) == 0
        out = capsys.readouterr().out
        assert "cache root:" in out and str(tmp_path) in out

    def test_cache_clear_empties_root(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.harness.artifacts import ArtifactCache

        cache = ArtifactCache(root=tmp_path)
        cache.put(cache.compilation_key("gcc", 1.0, 8), "payload")
        assert main(["cache-clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.pkl"))

    def test_cache_commands_cannot_mix_with_experiments(self):
        with pytest.raises(SystemExit):
            main(["cache-info", "T1"])


class TestValidateCommand:
    def test_validate_passes_on_clean_cores(self, capsys):
        code = main([
            "validate", "--benchmarks", "gcc,mcf", "--no-cache",
            "--fuzz", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "VALIDATION PASSED" in out
        # 2 benchmarks x 5 registered cores
        assert "10/10 lockstep runs clean" in out
        assert "translator fuzzing: PASS" in out

    def test_validate_core_selection(self, capsys):
        code = main([
            "validate", "--benchmarks", "gcc", "--cores", "ooo,braid",
            "--no-cache", "--fuzz", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2/2 lockstep runs clean" in out
        assert "inorder" not in out

    def test_validate_sampled_and_invariants(self, capsys):
        code = main([
            "validate", "--benchmarks", "gcc", "--cores", "ooo",
            "--sample", "interval=200,stride=4,warmup=64",
            "--invariants", "--no-cache", "--fuzz", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "exact" in out and "sampled" in out
        assert "cycles checked" in out

    def test_validate_rejects_unknown_core(self):
        with pytest.raises(SystemExit):
            main(["validate", "--cores", "vliw", "--no-cache", "--fuzz", "0"])

    def test_validate_cannot_mix_with_experiments(self):
        with pytest.raises(SystemExit):
            main(["validate", "T1"])


class TestServiceCommands:
    """submit/serve/status route through the harness entry point."""

    def _submit(self, store, extra=()):
        return main([
            "submit", "simulate", "benchmark=gcc", "core=braid",
            "scale=0.05", "max_instructions=3000",
            "--store", str(store), *extra,
        ])

    def test_submit_serve_status_round_trip(self, capsys, tmp_path):
        store = tmp_path / "svc"
        assert self._submit(store) == 0
        out = capsys.readouterr().out
        assert out.startswith("queued as j000001-")
        job_id = out.split()[-1]

        # An identical request from another client dedups.
        assert self._submit(store, ("--client", "other")) == 0
        assert "coalesced onto " + job_id in capsys.readouterr().out

        assert main([
            "serve", "--store", str(store), "--drain-when-idle",
            "--timeout", "60",
        ]) == 0
        assert "1 done, 0 failed, 1 coalesced" in capsys.readouterr().out

        assert main(["status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert job_id in out and "done" in out

        assert main(["status", "--store", str(store), "--job", job_id]) == 0
        out = capsys.readouterr().out
        assert '"status": "done"' in out and '"cycles"' in out

    def test_submit_rejects_bad_params(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["submit", "simulate", "benchmark=gcc",
                  "core=not-a-core", "--store", str(tmp_path / "s")])
        with pytest.raises(SystemExit):
            main(["submit", "simulate", "no-equals-sign",
                  "--store", str(tmp_path / "s")])

    def test_submit_enforces_quota(self, capsys, tmp_path):
        store = tmp_path / "svc"
        assert self._submit(store, ("--quota", "1")) == 0
        capsys.readouterr()
        code = main([
            "submit", "simulate", "benchmark=mcf", "core=braid",
            "scale=0.05", "max_instructions=3000",
            "--store", str(store), "--quota", "1",
        ])
        assert code == 1
        assert "quota" in capsys.readouterr().err
