"""Tests for the command-line experiment runner."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_runs_one_experiment(self, capsys):
        assert main(["T1", "--benchmarks", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "T1: braids per basic block" in out
        assert "gcc" in out

    def test_multiple_experiments(self, capsys):
        assert main(["T2", "T3", "--benchmarks", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "T2" in out and "T3" in out

    def test_quick_selector(self, capsys):
        assert main(["T1", "--benchmarks", "quick"]) == 0
        out = capsys.readouterr().out
        assert "equake" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["F99", "--benchmarks", "gcc"])

    def test_scale_flag(self, capsys):
        assert main(["T1", "--benchmarks", "gcc", "--scale", "0.5"]) == 0
