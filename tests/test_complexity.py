"""Tests for the design-complexity analysis (paper section 5.1)."""

import pytest

from repro.analysis.complexity import (
    compare_complexity,
    regfile_area,
    structure_cost,
)
from repro.sim.config import braid_config, depsteer_config, inorder_config, ooo_config


class TestRegfileAreaModel:
    def test_quadratic_in_ports(self):
        base = regfile_area(entries=64, reads=4, writes=2)
        doubled = regfile_area(entries=64, reads=8, writes=4)
        assert doubled == pytest.approx(4 * base)

    def test_linear_in_entries(self):
        assert regfile_area(128, 4, 2) == pytest.approx(2 * regfile_area(64, 4, 2))


class TestStructureCosts:
    def test_braid_register_area_far_below_ooo(self):
        # Paper: partitioning + port reduction "greatly reduce the total
        # area required by the register files".
        braid = structure_cost(braid_config(8))
        ooo = structure_cost(ooo_config(8))
        assert braid.regfile_area < ooo.regfile_area / 10

    def test_braid_has_no_broadcast_comparators(self):
        assert structure_cost(braid_config(8)).scheduler_comparators == 0
        assert structure_cost(ooo_config(8)).scheduler_comparators == (
            8 * 32 * 2 * 8
        )

    def test_braid_bypass_far_cheaper(self):
        braid = structure_cost(braid_config(8))
        ooo = structure_cost(ooo_config(8))
        # 1 level x 2^2 vs 3 levels x 8^2.
        assert braid.bypass_wires == 4
        assert ooo.bypass_wires == 192

    def test_braid_rename_narrower(self):
        braid = structure_cost(braid_config(8))
        ooo = structure_cost(ooo_config(8))
        assert braid.rename_ports == 12
        assert ooo.rename_ports == 24

    def test_braid_checkpoints_smaller(self):
        # Internal register values are not checkpointed (section 3.4).
        braid = structure_cost(braid_config(8))
        ooo = structure_cost(ooo_config(8))
        assert braid.checkpoint_words < ooo.checkpoint_words

    def test_inorder_is_cheapest(self):
        inorder = structure_cost(inorder_config(8))
        braid = structure_cost(braid_config(8))
        assert inorder.scheduler_comparators == 0
        assert inorder.rename_ports == 0
        # Braid complexity is "almost in-order": same comparator count.
        assert braid.scheduler_comparators == inorder.scheduler_comparators

    def test_depsteer_comparable_to_braid(self):
        dep = structure_cost(depsteer_config(8))
        braid = structure_cost(braid_config(8))
        assert dep.scheduler_comparators == braid.scheduler_comparators


class TestComparison:
    def test_ratios(self):
        comparison = compare_complexity(braid_config(8), ooo_config(8))
        assert comparison.ratio("regfile_area") < 0.1
        assert comparison.ratio("bypass_wires") < 0.05
        assert comparison.ratio("scheduler_comparators") == 0.0

    def test_render(self):
        comparison = compare_complexity(braid_config(8), ooo_config(8))
        text = comparison.render()
        assert "regfile_area" in text
        assert "braid-8w" in text and "ooo-8w" in text

    def test_as_dict(self):
        cost = structure_cost(braid_config(8))
        assert set(cost.as_dict()) == {
            "regfile_area", "scheduler_comparators", "bypass_wires",
            "rename_ports", "checkpoint_words",
        }
