"""Deterministic chaos injection and kill-recovery (repro.service.chaos).

The headline invariant — SIGKILL the supervisor mid-campaign, restart,
and end bit-identical to an uninterrupted run — is proven here with a
real subprocess supervisor, a real SIGKILL, and a journal replay; the
full mixed-batch version runs in CI as ``scripts/chaos_smoke.py``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service import ChaosSpec, JobRequest, JobStore
from repro.service.chaos import (
    ChaosSpecError,
    FAIL_WRITE,
    chaos_point,
    spec_from_env,
)
from repro.service.jobs import normalize_params
from repro.service.jobstore import DONE

REPO = Path(__file__).resolve().parent.parent
SIZING = {"scale": 0.05, "max_instructions": 3000}


def _has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


needs_fork = pytest.mark.skipif(
    not _has_fork(), reason="requires the fork start method"
)


def submit(store, benchmark, core, client="default"):
    job_id, _ = store.submit(JobRequest(
        kind="simulate",
        params=normalize_params(
            "simulate",
            {"benchmark": benchmark, "core": core, **SIZING},
        ),
        client=client,
    ))
    return job_id


class TestChaosSpec:
    def test_parse_render_round_trip(self):
        spec = ChaosSpec.parse(
            "kill-worker:j1@2;fail-write:j2;kill-supervisor:3"
        )
        assert spec.kill_worker == {"j1": 2}
        assert spec.fail_write == {"j2": 1}
        assert spec.kill_supervisor_after == 3
        assert ChaosSpec.parse(spec.render()) == spec

    @pytest.mark.parametrize("bad", [
        "no-colon-clause",
        "kill-worker:@2",
        "kill-worker:j1@zero",
        "kill-supervisor:many",
        "kill-supervisor:-1",
        "explode-the-disk:j1",
    ])
    def test_bad_specs_are_rejected(self, bad):
        with pytest.raises(ChaosSpecError):
            ChaosSpec.parse(bad)

    def test_unarmed_environment_is_a_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert spec_from_env() is None
        chaos_point(FAIL_WRITE, "any-job")  # must not raise

    def test_occurrence_budget_holds_across_processes(
        self, tmp_path, monkeypatch
    ):
        spec = ChaosSpec(fail_write={"j": 2})
        for name, value in spec.environ(tmp_path / "marks").items():
            monkeypatch.setenv(name, value)
        fired = 0
        for _ in range(5):
            try:
                chaos_point(FAIL_WRITE, "j")
            except OSError:
                fired += 1
        assert fired == 2  # budget, not per-call probability


@needs_fork
class TestWorkerKill:
    def test_sigkilled_worker_retries_to_completion(
        self, tmp_path, monkeypatch
    ):
        from repro.service.retry import RetryPolicy
        from repro.service.supervisor import ServiceConfig, serve

        store = JobStore(tmp_path / "store")
        job_id = submit(store, "gcc", "braid")
        spec = ChaosSpec(kill_worker={job_id: 1})
        for name, value in spec.environ(tmp_path / "marks").items():
            monkeypatch.setenv(name, value)
        # jobs=2: the kill lands in a forked hardened worker, and the
        # runner must survive it and re-dispatch.
        serve(store, ServiceConfig(
            jobs=2, drain_when_idle=True,
            policy=RetryPolicy(backoff=0.01, deadline=60.0),
        ))
        job = store.job(job_id)
        assert job.status == DONE and job.attempts == 2
        assert store.result(job_id)["cycles"] > 0
        store.close()


class TestSupervisorKill:
    """SIGKILL the supervisor subprocess mid-run; restart; compare."""

    def _serve_subprocess(self, root):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        spec = ChaosSpec(kill_supervisor_after=1)
        env.update(spec.environ(root / "chaos-marks"))
        return subprocess.run(
            [sys.executable, "-m", "repro.harness", "serve",
             "--store", str(root), "--drain-when-idle", "--timeout", "60"],
            env=env, cwd=str(REPO), capture_output=True, text=True,
            timeout=300,
        )

    def test_kill_restart_is_bit_identical_to_uninterrupted(
        self, tmp_path
    ):
        from repro.service.retry import RetryPolicy
        from repro.service.supervisor import ServiceConfig, serve

        jobs = [("gcc", "braid"), ("mcf", "inorder"), ("gcc", "ooo")]

        # Reference: uninterrupted, in-process.
        reference = JobStore(tmp_path / "reference")
        ref_ids = [submit(reference, b, c) for b, c in jobs]
        for b, c in jobs:  # duplicates pin the dedup counters
            submit(reference, b, c, client="other")
        serve(reference, ServiceConfig(
            jobs=1, drain_when_idle=True,
            policy=RetryPolicy(deadline=60.0),
        ))
        ref_payloads = [
            json.dumps(reference.result(j), sort_keys=True) for j in ref_ids
        ]
        ref_counters = reference.counters()
        reference.close()

        # Chaos: subprocess supervisor, SIGKILLed after its first settle.
        root = tmp_path / "chaos"
        store = JobStore(root)
        chaos_ids = [submit(store, b, c) for b, c in jobs]
        for b, c in jobs:
            submit(store, b, c, client="other")
        store.close()
        assert chaos_ids == ref_ids  # same submissions, same identities

        first = self._serve_subprocess(root)
        assert first.returncode == -9, (
            f"expected a SIGKILL death, got {first.returncode}: "
            f"{first.stderr}"
        )
        second = self._serve_subprocess(root)
        assert second.returncode == 0, second.stderr

        after = JobStore(root, readonly=True)
        assert [after.job(j).status for j in chaos_ids] == [DONE] * 3
        payloads = [
            json.dumps(after.result(j), sort_keys=True) for j in chaos_ids
        ]
        assert payloads == ref_payloads
        counters = after.counters()
        assert counters["coalesced"] == ref_counters["coalesced"] == 3
        assert counters["completed"] == ref_counters["completed"] == 3
        assert counters["recovered"] >= 1  # something was mid-flight
        assert counters["torn_lines"] == 0
        after.close()
