"""Documentation freshness tests.

The repository's claims live in three documents; these tests keep them from
silently drifting away from the code they describe.
"""

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def docs():
    return {
        "README.md": (ROOT / "README.md").read_text(),
        "DESIGN.md": (ROOT / "DESIGN.md").read_text(),
        "EXPERIMENTS.md": (ROOT / "EXPERIMENTS.md").read_text(),
    }


class TestPresence:
    def test_all_documents_exist(self, docs):
        for name, text in docs.items():
            assert len(text) > 500, f"{name} is suspiciously short"


class TestReadme:
    def test_cites_the_paper(self, docs):
        assert "Tseng" in docs["README.md"]
        assert "ISCA 2008" in docs["README.md"]

    def test_quickstart_names_real_api(self, docs):
        from repro.core import braidify  # noqa: F401
        from repro.sim import braid_config, ooo_config  # noqa: F401

        assert "braidify" in docs["README.md"]
        assert "braid_config" in docs["README.md"]

    def test_example_scripts_exist(self, docs):
        for line in docs["README.md"].splitlines():
            if "python examples/" in line:
                script = line.split("python ")[1].split()[0]
                assert (ROOT / script).exists(), script


class TestDesign:
    def test_paper_check_recorded(self, docs):
        assert "matches the expected title" in docs["DESIGN.md"]

    def test_experiment_index_covers_all_benches(self, docs):
        bench_dir = ROOT / "benchmarks"
        bench_files = {
            p.name for p in bench_dir.glob("bench_*.py")
        }
        for name in bench_files:
            assert name in docs["DESIGN.md"] or name.replace(
                ".py", ""
            ) in docs["DESIGN.md"], f"{name} missing from DESIGN.md"

    def test_mentions_every_subpackage(self, docs):
        for package in ("isa", "workloads", "dataflow", "core", "uarch",
                        "sim", "analysis", "harness"):
            assert package in docs["DESIGN.md"]


class TestExperiments:
    def test_every_experiment_id_documented(self, docs):
        from repro.harness import ALL_EXPERIMENTS

        for experiment_id in ALL_EXPERIMENTS:
            assert f"### {experiment_id} " in docs["EXPERIMENTS.md"], (
                f"{experiment_id} missing from EXPERIMENTS.md"
            )

    def test_headline_claim_present(self, docs):
        assert "84.5%" in docs["EXPERIMENTS.md"]
        assert "paper: 91%" in docs["EXPERIMENTS.md"]

    def test_divergences_recorded(self, docs):
        assert "Known divergences" in docs["EXPERIMENTS.md"]
