"""White-box tests of the shared timing machinery on crafted programs."""

from dataclasses import replace

import pytest

from repro.core import braidify
from repro.isa import assemble
from repro.sim import (
    SimulationError,
    braid_config,
    inorder_config,
    ooo_config,
    prepare_workload,
    simulate,
)
from repro.sim.run import build_core


def workload_of(source: str, perfect: bool = True):
    return prepare_workload(assemble(source), perfect=perfect)


class TestLatencies:
    def test_dependent_chain_is_latency_bound(self):
        # 10 dependent 1-cycle adds: cycles >= ~10 + pipeline fill.
        source = "\n".join(["addq r31, #1, r1"] + ["addq r1, r1, r1"] * 10)
        result = simulate(workload_of(source), ooo_config(8))
        fill = ooo_config(8).front_end.depth
        assert result.cycles >= 10 + fill

    def test_independent_work_is_width_bound(self):
        source = "\n".join(
            f"addq r31, #{i}, r{1 + (i % 24)}" for i in range(64)
        )
        result = simulate(workload_of(source), ooo_config(8))
        # 64 independent adds at 8 wide: near 8 per cycle in steady state.
        assert result.cycles < 64

    def test_multiply_latency_respected(self):
        chain = "addq r31, #3, r1\n" + "mulq r1, r1, r1\n" * 5
        result = simulate(workload_of(chain), ooo_config(8))
        assert result.cycles >= 5 * 7  # IMUL latency 7

    def test_load_use_delay(self):
        source = """
        addq r31, #4096, r1
        ldq r2, 0(r1)
        addq r2, r2, r3
        """
        result = simulate(workload_of(source), ooo_config(8))
        assert result.cycles >= 3 + 3  # cache latency on the critical path


class TestMispredictionPenalty:
    def _loop(self):
        # A tight loop whose branch alternates via a counter pattern the
        # predictor must warm up on.
        return assemble(
            """
            .block ENTRY
                addq r31, #40, r1
                addq r31, #0, r2
            .block LOOP
                addqi r2, #1, r2
                cmplt r2, r1, r3
                bne r3, LOOP
            .block DONE
                nop
            """
        )

    def test_mispredicts_cost_cycles(self):
        program = self._loop()
        real = prepare_workload(program)  # warm-up mispredicts exist
        perfect = prepare_workload(program, perfect=True)
        slow = simulate(real, ooo_config(8))
        fast = simulate(perfect, ooo_config(8))
        assert slow.cycles >= fast.cycles
        assert slow.mispredicts == len(real.mispredicted)

    def test_braid_pays_smaller_penalty(self):
        program = self._loop()
        compilation = braidify(program)
        braided = prepare_workload(compilation.translated)
        short = simulate(braided, braid_config(8))
        long_front = replace(braid_config(8).front_end, depth=8, redirect=13)
        long = simulate(
            braided, replace(braid_config(8), front_end=long_front,
                             name="braid-longpipe")
        )
        if short.mispredicts:
            assert short.cycles < long.cycles


class TestStructuralStalls:
    def test_register_entry_stalls_counted(self):
        source = "\n".join(
            f"mulq r{1 + (i % 8)}, r{1 + (i % 8)}, r{9 + (i % 8)}"
            for i in range(64)
        )
        tiny_rf = replace(
            ooo_config(8),
            regfile=replace(ooo_config(8).regfile, entries=2),
            name="ooo-tiny-rf",
        )
        result = simulate(workload_of(source), tiny_rf)
        baseline = simulate(workload_of(source), ooo_config(8))
        assert result.cycles > baseline.cycles

    def test_fu_limit_binds(self):
        source = "\n".join(
            f"addq r31, #{i}, r{1 + (i % 24)}" for i in range(64)
        )
        one_fu = replace(ooo_config(8), functional_units=1, name="ooo-1fu")
        slow = simulate(workload_of(source), one_fu)
        fast = simulate(workload_of(source), ooo_config(8))
        assert slow.cycles > fast.cycles

    def test_inorder_head_blocking(self):
        # A long multiply followed by independent adds: the in-order core
        # cannot start the adds early.
        # Chain A: two dependent multiplies (14 cycles).  Chain B: twenty
        # dependent adds, independent of A but later in program order.  The
        # out-of-order core overlaps the chains; the in-order core serializes
        # B behind A's stalled head.
        source = (
            "addq r31, #3, r1\n"
            "mulq r1, r1, r2\n"
            "mulq r2, r2, r4\n"
            "addq r31, #1, r5\n"
            + "addq r5, r5, r5\n" * 20
        )
        inorder = simulate(workload_of(source), inorder_config(8))
        ooo = simulate(workload_of(source), ooo_config(8))
        assert inorder.cycles > ooo.cycles

    def test_store_load_forwarding_on_timing_path(self):
        source = """
        addq r31, #4096, r1
        addq r31, #7, r2
        stq r2, 0(r1)
        ldq r3, 0(r1)
        addq r3, r3, r4
        """
        result = simulate(workload_of(source), ooo_config(8))
        assert result.extra["lsq_forwards"] >= 1

    def test_simulation_error_on_wedge(self):
        workload = workload_of("addq r1, r2, r3")
        core = build_core(workload, ooo_config(8))
        with pytest.raises(SimulationError):
            core.run(max_cycles=0)


class TestBypassTiming:
    def test_values_falling_off_bypass_wait_for_writeback(self):
        # With zero bypass, every dependent pair pays the writeback delay.
        source = "addq r31, #1, r1\n" + "addq r1, r1, r1\n" * 8
        no_bypass = replace(
            ooo_config(8), bypass_levels=0, bypass_width=0, name="ooo-nobypass"
        )
        slow = simulate(workload_of(source), no_bypass)
        fast = simulate(workload_of(source), ooo_config(8))
        assert slow.cycles > fast.cycles

    def test_bypass_forward_statistics(self):
        source = "addq r31, #1, r1\n" + "addq r1, r1, r1\n" * 8
        core = build_core(workload_of(source), ooo_config(8))
        result = core.run()
        assert result.extra["bypass_forwards"] >= 4
