"""Differential validation subsystem (repro.validate).

The validation layer is itself the safety net for the timing cores, so
these tests check both directions:

* clean simulations pass — every core, exact and sampled, lockstep and
  per-cycle invariants, plus the harness ``validate`` sweep;
* injected corruption is *caught* — a tampered trace, a double-retired
  instruction, a broken structural counter, and a miscompiling
  translator each produce a precise failure, not a silent pass.
"""

from __future__ import annotations

import copy

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.sim.config import (
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
)
from repro.sim.run import build_core, simulate
from repro.sim.sampling import SamplingConfig
from repro.validate import (
    Divergence,
    DivergenceError,
    InvariantChecker,
    InvariantViolation,
    LockstepChecker,
    ValidationConfig,
    attach_validation,
    check_now,
    fuzz_translator,
    hostile_program,
    lockstep_simulate,
    run_validation,
    validation_from_env,
)
from repro.validate.fuzzing import annotation_defects
from repro.validate.runner import CORE_FACTORIES

SAMPLING = SamplingConfig(interval=200, stride=4, warmup=64)

ALL_CONFIGS = [
    pytest.param(ooo_config, False, id="ooo"),
    pytest.param(inorder_config, False, id="inorder"),
    pytest.param(depsteer_config, False, id="depsteer"),
    pytest.param(braid_config, True, id="braid"),
]


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        benchmarks=("gcc", "mcf"),
        max_instructions=20_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


class TestConfig:
    def test_parse_modes(self):
        assert ValidationConfig.parse("") is None
        assert ValidationConfig.parse("off") is None
        assert ValidationConfig.parse("1") == ValidationConfig(invariants=True)
        assert ValidationConfig.parse("lockstep") == ValidationConfig(
            lockstep=True
        )
        assert ValidationConfig.parse("all") == ValidationConfig(
            lockstep=True, invariants=True
        )
        assert ValidationConfig.parse("lockstep,invariants") == (
            ValidationConfig(lockstep=True, invariants=True)
        )

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            ValidationConfig.parse("turbo")

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert validation_from_env() is None
        monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
        assert validation_from_env() == ValidationConfig(lockstep=True)

    def test_attach_disabled_returns_none(self, ctx):
        core = build_core(ctx.workload("gcc"), ooo_config())
        assert attach_validation(core, ctx.workload("gcc"), None) is None
        assert core.retire_hook is None and core.invariant_hook is None


class TestLockstepClean:
    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_exact_runs_clean(self, ctx, factory, braided):
        workload = ctx.workload("gcc", braided=braided)
        result, divergences = lockstep_simulate(workload, factory())
        assert divergences == []
        assert result.instructions == len(workload.trace)

    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_sampled_runs_clean(self, ctx, factory, braided):
        workload = ctx.workload("gcc", braided=braided)
        result, divergences = lockstep_simulate(
            workload, factory(), sampling=SAMPLING
        )
        assert divergences == []
        assert result.sampled or "sample_fallback_exact" in result.extra

    def test_checker_accounts_whole_trace(self, ctx):
        workload = ctx.workload("mcf")
        core = build_core(workload, ooo_config())
        checker = LockstepChecker(workload).attach(core)
        core.run()
        checker.finish(expect_full=True)
        assert checker.instructions_checked == len(workload.trace)
        assert checker.instructions_skipped == 0


class TestLockstepCatches:
    def test_tampered_trace_pc(self, ctx):
        workload = copy.deepcopy(ctx.workload("gcc"))
        workload.trace[40].pc += 4
        core = build_core(workload, ooo_config())
        LockstepChecker(workload).attach(core)
        with pytest.raises(DivergenceError) as excinfo:
            core.run()
        assert excinfo.value.divergence.field == "pc"
        assert excinfo.value.divergence.index == 40

    def test_tampered_memory_address(self, ctx):
        workload = copy.deepcopy(ctx.workload("gcc"))
        victim = next(
            d for d in workload.trace if d.mem_addr is not None
        )
        victim.mem_addr += 8
        core = build_core(workload, ooo_config())
        LockstepChecker(workload).attach(core)
        with pytest.raises(DivergenceError) as excinfo:
            core.run()
        assert excinfo.value.divergence.field == "mem_addr"

    def test_dropped_instruction_is_coverage_divergence(self, ctx):
        workload = ctx.workload("mcf")
        core = build_core(workload, ooo_config())
        checker = LockstepChecker(workload, fail_fast=False).attach(core)
        core.run()
        # Pretend the run finished one instruction early.
        checker._position -= 1
        divergences = checker.finish(expect_full=True)
        assert divergences and divergences[0].field == "coverage"

    def test_overlapping_skip_is_divergence(self, ctx):
        workload = ctx.workload("gcc")
        checker = LockstepChecker(workload, fail_fast=False)
        checker.on_skip(0, 100)
        checker.on_skip(100, 50)  # window overlap: rewinds the cursor
        assert any(d.field == "skip_overlap" for d in checker.divergences)

    def test_gapped_skip_is_divergence(self, ctx):
        workload = ctx.workload("gcc")
        checker = LockstepChecker(workload, fail_fast=False)
        checker.on_skip(10, 50)  # origin disagrees with the cursor (0)
        assert any(d.field == "skip_origin" for d in checker.divergences)

    def test_collects_all_when_not_fail_fast(self, ctx):
        workload = copy.deepcopy(ctx.workload("gcc"))
        workload.trace[5].pc += 4
        workload.trace[6].pc += 4
        core = build_core(workload, ooo_config())
        checker = LockstepChecker(workload, fail_fast=False).attach(core)
        core.run()
        fields = [d.field for d in checker.finish()]
        assert fields.count("pc") >= 2

    def test_divergence_render_mentions_everything(self):
        divergence = Divergence(
            benchmark="gcc", machine="ooo-8", cycle=17, index=3,
            field="pc", expected="0x40", actual="0x44",
        )
        text = divergence.render()
        for needle in ("gcc", "ooo-8", "17", "3", "pc", "0x40", "0x44"):
            assert needle in text


class TestInvariantsClean:
    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_exact_runs_clean(self, ctx, factory, braided):
        workload = ctx.workload("gcc", braided=braided)
        core = build_core(workload, factory())
        checker = InvariantChecker().attach(core)
        result = core.run()
        assert checker.cycles_checked > 0
        assert result.instructions == len(workload.trace)

    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_final_state_clean(self, ctx, factory, braided):
        workload = ctx.workload("gcc", braided=braided)
        core = build_core(workload, factory())
        core.run()
        assert check_now(core, 0) == []

    def test_instrumented_loop_is_timing_identical(self, ctx):
        workload = ctx.workload("gcc")
        plain = build_core(workload, ooo_config()).run()
        core = build_core(workload, ooo_config())
        InvariantChecker().attach(core)
        checked = core.run()
        assert checked.cycles == plain.cycles
        assert checked.stalls.as_dict() == plain.stalls.as_dict()


class TestInvariantsCatch:
    def test_corrupt_ready_accounting(self, ctx):
        core = build_core(ctx.workload("gcc"), ooo_config())
        core.run()
        core._ready_unissued += 3
        messages = check_now(core, 0)
        assert any("_ready_unissued" in message for message in messages)

    def test_corrupt_mem_accounting(self, ctx):
        core = build_core(ctx.workload("gcc"), ooo_config())
        core.run()
        core._mem_in_flight += 1
        messages = check_now(core, 0)
        assert any("_mem_in_flight" in message for message in messages)

    def test_live_corruption_raises_mid_run(self, ctx):
        workload = ctx.workload("gcc")
        core = build_core(workload, ooo_config())
        InvariantChecker().attach(core)
        original = core.retire_stage
        state = {"armed": True}

        def corrupting_retire(cycle):
            original(cycle)
            if state["armed"] and core._retired_count > 50:
                state["armed"] = False
                core._ready_unissued += 1

        core.retire_stage = corrupting_retire
        with pytest.raises(InvariantViolation) as excinfo:
            core.run()
        assert "_ready_unissued" in str(excinfo.value)
        assert excinfo.value.machine == ooo_config().name

    def test_corrupt_regfile_accounting(self, ctx):
        core = build_core(ctx.workload("gcc"), ooo_config())
        core.run()
        core.rf.in_flight += 1
        messages = check_now(core, 0)
        assert any("register file" in message for message in messages)


class TestSimulateIntegration:
    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_explicit_validation_config(self, ctx, factory, braided):
        workload = ctx.workload("mcf", braided=braided)
        result = simulate(
            workload, factory(),
            validation=ValidationConfig(lockstep=True),
        )
        baseline = simulate(workload, factory())
        assert result.cycles == baseline.cycles

    def test_env_knob_attaches_lockstep(self, ctx, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
        workload = copy.deepcopy(ctx.workload("gcc"))
        workload.trace[10].pc += 4
        with pytest.raises(DivergenceError):
            simulate(workload, ooo_config())

    def test_env_knob_off_attaches_nothing(self, ctx, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "off")
        workload = copy.deepcopy(ctx.workload("gcc"))
        workload.trace[10].pc += 4  # corrupt, but nobody is checking
        result = simulate(workload, ooo_config())
        assert result.instructions == len(workload.trace)

    def test_sampled_validation_through_simulate(self, ctx):
        workload = ctx.workload("gcc")
        result = simulate(
            workload, ooo_config(), sampling=SAMPLING,
            validation=ValidationConfig(lockstep=True),
        )
        assert result.sampled or "sample_fallback_exact" in result.extra


class TestFuzzer:
    def test_hostile_programs_are_valid_and_deterministic(self):
        import random

        first = hostile_program(random.Random(7))
        second = hostile_program(random.Random(7))
        first.validate()
        assert [len(b.instructions) for b in first.blocks] == [
            len(b.instructions) for b in second.blocks
        ]

    def test_clean_translator_passes(self):
        report = fuzz_translator(samples=25, seed=1)
        assert report.passed
        assert report.samples == 25
        assert report.checks == 25
        assert "PASS" in report.render()

    def test_deterministic_for_fixed_seed(self):
        a = fuzz_translator(samples=10, seed=3)
        b = fuzz_translator(samples=10, seed=3)
        assert a.samples == b.samples and a.failures == b.failures

    def test_broken_translator_is_caught(self):
        class _Identity:
            def __init__(self, program):
                self.translated = program

        def dropping_translate(program, internal_limit=8):
            # "Miscompile": drop the last instruction of the loop body's
            # hostile block, changing observable memory.
            broken = copy.deepcopy(program)
            del broken.blocks[1].instructions[0]
            return _Identity(broken)

        report = fuzz_translator(
            samples=5, seed=0, translate=dropping_translate
        )
        assert not report.passed
        assert "FAIL" in report.render()

    def test_crashing_translator_is_a_failure(self):
        def crashing_translate(program, internal_limit=8):
            raise RuntimeError("boom")

        report = fuzz_translator(samples=3, seed=0,
                                 translate=crashing_translate)
        assert len(report.failures) == 3
        assert "RuntimeError" in report.failures[0].reason

    def test_fail_fast_stops_early(self):
        def crashing_translate(program, internal_limit=8):
            raise RuntimeError("boom")

        report = fuzz_translator(samples=50, seed=0,
                                 translate=crashing_translate,
                                 fail_fast=True)
        assert len(report.failures) == 1

    def test_unannotated_program_has_defects(self):
        import random

        program = hostile_program(random.Random(0))
        assert annotation_defects(program)  # no braid annotations at all


class TestRunner:
    def test_full_sweep_passes(self, ctx):
        report = run_validation(
            ctx, ("gcc", "mcf"), sampling=SAMPLING, fuzz_samples=5
        )
        assert report.passed
        # 2 benchmarks x 5 registered cores x (exact + sampled)
        assert len(report.outcomes) == 20
        assert all(outcome.ok for outcome in report.outcomes)
        text = report.render()
        assert "VALIDATION PASSED" in text
        assert "20/20 lockstep runs clean" in text

    def test_invariant_sweep_counts_cycles(self, ctx):
        report = run_validation(
            ctx, ("gcc",), cores=("ooo",), invariants=True, fuzz_samples=0
        )
        assert report.passed
        assert report.outcomes[0].cycles_checked > 0
        assert report.fuzz is None

    def test_divergence_is_reported_not_raised(self, ctx, monkeypatch):
        tampered = copy.deepcopy(ctx.workload("gcc"))
        tampered.trace[10].pc += 4
        monkeypatch.setattr(
            ctx, "workload", lambda name, braided=False: tampered
        )
        report = run_validation(ctx, ("gcc",), cores=("ooo",), fuzz_samples=0)
        assert not report.passed
        assert "pc" in report.outcomes[0].failure
        assert "VALIDATION FAILED" in report.render()

    def test_unknown_core_rejected(self, ctx):
        with pytest.raises(ValueError):
            run_validation(ctx, ("gcc",), cores=("ooo", "vliw"))

    def test_core_factories_cover_all_kinds(self):
        assert set(CORE_FACTORIES) == {
            "ooo", "inorder", "depsteer", "braid", "blockooo"
        }
