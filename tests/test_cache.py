"""Unit tests for the cache hierarchy."""

import pytest

from repro.uarch.cache import Cache, MemoryHierarchy, MemoryHierarchyConfig


class TestSingleLevel:
    def make(self, **kwargs):
        defaults = dict(
            name="L1", size_bytes=1024, associativity=2, latency=3,
            line_bytes=64, memory_latency=100,
        )
        defaults.update(kwargs)
        return Cache(**defaults)

    def test_cold_miss_then_hit(self):
        cache = self.make()
        assert cache.access(0x100) == 103  # miss -> memory
        assert cache.access(0x100) == 3  # hit

    def test_same_line_hits(self):
        cache = self.make()
        cache.access(0x100)
        assert cache.access(0x100 + 63) == 3

    def test_adjacent_line_misses(self):
        cache = self.make()
        cache.access(0x100 & ~63)
        assert cache.access((0x100 & ~63) + 64) == 103

    def test_lru_eviction(self):
        cache = self.make()  # 1024/2/64 = 8 sets, 2 ways
        set_stride = 8 * 64  # same set every stride
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now MRU
        cache.access(c)  # evicts b
        assert cache.access(a) == 3
        assert cache.access(b) == 103  # was evicted

    def test_lookup_does_not_mutate(self):
        cache = self.make()
        assert not cache.lookup(0x200)
        cache.access(0x200)
        assert cache.lookup(0x200)
        assert cache.stats.accesses == 1

    def test_stats(self):
        cache = self.make()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Cache("bad", size_bytes=1000, associativity=3, latency=1)

    def test_flush(self):
        cache = self.make()
        cache.access(0)
        cache.flush()
        assert not cache.lookup(0)


class TestHierarchy:
    def test_paper_geometry(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.l1i.size_bytes == 64 * 1024
        assert hierarchy.l1i.associativity == 4
        assert hierarchy.l1d.associativity == 2
        assert hierarchy.l2.size_bytes == 1024 * 1024
        assert hierarchy.l2.associativity == 8
        assert hierarchy.config.memory_latency == 400

    def test_miss_path_latencies(self):
        hierarchy = MemoryHierarchy()
        # Cold: L1 miss + L2 miss + memory.
        assert hierarchy.data_access(0x1000) == 3 + 6 + 400
        # Now everything hits in L1.
        assert hierarchy.data_access(0x1000) == 3

    def test_l2_hit_after_l1_eviction(self):
        config = MemoryHierarchyConfig(l1d_size=128, l1d_assoc=1)
        hierarchy = MemoryHierarchy(config)
        hierarchy.data_access(0x0)
        hierarchy.data_access(0x80)  # evicts 0x0 from the 2-set L1
        assert hierarchy.data_access(0x0) == 3 + 6  # L1 miss, L2 hit

    def test_unified_l2_shared_by_instruction_and_data(self):
        hierarchy = MemoryHierarchy()
        hierarchy.instruction_fetch(0x4000)
        # Data access to the same line: L1D misses but L2 already has it.
        assert hierarchy.data_access(0x4000) == 3 + 6

    def test_perfect_mode(self):
        hierarchy = MemoryHierarchy(MemoryHierarchyConfig(perfect=True))
        assert hierarchy.data_access(0xDEAD00) == 3
        assert hierarchy.instruction_fetch(0xBEEF00) == 3
