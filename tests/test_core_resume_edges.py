"""Resumable-run-loop edge cases (_run_until / fast_forward / drain_in_flight).

The sampled-execution engine composes these seams in ways a full run never
does — empty measured windows, gaps landing exactly on the last
instruction, zero-length traces — so each edge is pinned down here
directly, on every core kind.
"""

from __future__ import annotations

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.isa.instruction import Instruction
from repro.isa.opcodes import opcode_by_name
from repro.isa.program import BasicBlock, Program
from repro.sim.config import (
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
)
from repro.sim.core import SimulationError
from repro.sim.run import build_core, simulate
from repro.sim.sampling import SamplingConfig
from repro.sim.workload import prepare_workload

ALL_CONFIGS = [
    pytest.param(ooo_config, False, id="ooo"),
    pytest.param(inorder_config, False, id="inorder"),
    pytest.param(depsteer_config, False, id="depsteer"),
    pytest.param(braid_config, True, id="braid"),
]

MAX_CYCLES = 1_000_000


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        benchmarks=("gcc",),
        max_instructions=20_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


def _zero_instruction_workload():
    program = Program(name="zero", blocks=[BasicBlock(0, label="ENTRY")])
    program.validate()
    return prepare_workload(program, max_instructions=16)


def _single_instruction_workload():
    program = Program(name="one", blocks=[BasicBlock(
        0, label="ENTRY",
        instructions=[Instruction(opcode=opcode_by_name("nop"))],
    )])
    program.validate()
    return prepare_workload(program, max_instructions=16)


class TestZeroInstructionPrograms:
    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_exact_run_is_empty(self, factory, braided):
        workload = _zero_instruction_workload()
        result = build_core(workload, factory()).run()
        assert result.instructions == 0
        assert result.cycles == 0
        assert result.issued == 0

    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_sampled_run_falls_back_to_exact(self, factory, braided):
        workload = _zero_instruction_workload()
        result = simulate(workload, factory(), sampling=SamplingConfig())
        assert result.instructions == 0
        assert result.extra.get("sample_fallback_exact") == 1.0

    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_single_instruction_retires(self, factory, braided):
        workload = _single_instruction_workload()
        result = build_core(workload, factory()).run()
        assert result.instructions == 1
        assert result.cycles > 0


class TestEmptyWindows:
    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_run_until_current_target_is_noop(self, ctx, factory, braided):
        workload = ctx.workload("gcc", braided=braided)
        core = build_core(workload, factory())
        # Target 0 with 0 retired: the loop must not take a single cycle.
        assert core._run_until(0, 0, MAX_CYCLES) == 0
        assert core._retired_count == 0
        assert not core._rob and not core._fetch_buffer

    def test_repeated_empty_windows_compose(self, ctx):
        workload = ctx.workload("gcc")
        core = build_core(workload, ooo_config())
        cycle = core._run_until(100, 0, MAX_CYCLES)
        for _ in range(3):  # zero-width windows at the same target
            assert core._run_until(100, cycle, MAX_CYCLES) == cycle
        retired = core._retired_count
        assert retired >= 100
        # And the run continues past them exactly as if they never happened.
        cycle = core._run_until(retired + 50, cycle, MAX_CYCLES)
        assert core._retired_count >= retired + 50


class TestDrainAndFastForward:
    def test_drain_on_idle_core_is_noop(self, ctx):
        core = build_core(ctx.workload("gcc"), ooo_config())
        assert core.drain_in_flight(17) == 17

    def test_drain_is_idempotent(self, ctx):
        workload = ctx.workload("gcc")
        core = build_core(workload, ooo_config())
        core._fetch_limit = 64
        cycle = core._run_until(64, 0, MAX_CYCLES)
        cycle = core.drain_in_flight(cycle)
        assert core.drain_in_flight(cycle) == cycle
        assert not core._pending_writeback and not core._events

    def test_fast_forward_requires_drained_pipeline(self, ctx):
        workload = ctx.workload("gcc")
        core = build_core(workload, ooo_config())
        core._run_until(10, 0, MAX_CYCLES)  # ROB still holds younger insts
        with pytest.raises(SimulationError):
            core.fast_forward(100, 0)

    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_fast_forward_to_end_leaves_nothing_to_run(
        self, ctx, factory, braided
    ):
        workload = ctx.workload("gcc", braided=braided)
        total = len(workload.trace)
        core = build_core(workload, factory())
        core.fast_forward(total, 0)
        # An empty trailing window after the skip retires nothing.
        retired = core._retired_count
        assert core._run_until(retired, 0, MAX_CYCLES) == 0
        assert core.drain_in_flight(0) == 0


class TestWindowEndingAtLastInstruction:
    @pytest.mark.parametrize("factory, braided", ALL_CONFIGS)
    def test_final_window_flush(self, ctx, factory, braided):
        """A sample window ending exactly at the last instruction."""
        workload = ctx.workload("gcc", braided=braided)
        total = len(workload.trace)
        window = 64
        core = build_core(workload, factory())
        cycle = core.drain_in_flight(0)
        core.fast_forward(total - window, cycle)
        origin = core._retired_count - (total - window)
        core._fetch_limit = total
        cycle = core._run_until(origin + total, cycle, MAX_CYCLES)
        cycle = core.drain_in_flight(cycle)
        assert core._retired_count - origin == total
        assert core._next_fetch == total
        assert not core._rob and not core._pending_writeback

    def test_sampled_simulate_with_tail_aligned_windows(self, ctx):
        # interval dividing the trace evenly maximizes the chance that the
        # final measured window abuts the very last instruction; the run
        # must still drain and report the full instruction total.
        workload = ctx.workload("gcc")
        total = len(workload.trace)
        sampling = SamplingConfig(interval=total // 20, stride=2, warmup=32)
        result = simulate(workload, ooo_config(), sampling=sampling)
        assert result.instructions == total
        assert result.cycles > 0
