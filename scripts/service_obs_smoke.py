#!/usr/bin/env python
"""CI smoke test for service observability.

Serves a small mixed batch with heartbeats armed while *concurrently*
tailing the journal with a :class:`JournalFollower` and polling the
progress directory — the same consumers ``status --follow`` drives —
then audits everything the run left behind:

1. **Live heartbeats** — each running job publishes a fresh progress
   file while it runs (observed live, within a few heartbeat
   intervals), and every job ends with a final ``retired == total``
   heartbeat;
2. **Event ordering** — every job's journal timeline is well-formed
   (``submit`` first, ``start`` before its settle) and its monotonic
   stamps never run backwards;
3. **Metrics + health** — the published ``metrics.prom`` passes the
   bundled exposition validator, parses, and agrees with the store
   counters; ``health.json`` names the serving pid and round;
4. **Telemetry non-interference** — the same job served with
   heartbeats off and with an aggressive heartbeat interval produces
   bit-identical result payloads.

Exits non-zero with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/service_obs_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import parse_prometheus, prometheus_errors
from repro.service import JobRequest, JobStore
from repro.service.jobs import normalize_params
from repro.service.supervisor import ServiceConfig, Supervisor
from repro.service.telemetry import heartbeat_age, read_health, read_progress

SIZING = {"scale": 0.1, "max_instructions": 20_000}
HEARTBEAT = 0.05


def fail(message: str) -> None:
    print(f"service_obs_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def submit(store, kind, params):
    job_id, _ = store.submit(JobRequest(
        kind=kind,
        params=normalize_params(kind, {**params, **SIZING}),
        client="smoke",
    ))
    return job_id


def serve_watched(root):
    """Serve a batch while following the journal; returns the evidence."""
    store = JobStore(root)
    jobs = [
        submit(store, "simulate", {"benchmark": "gcc", "core": "braid"}),
        submit(store, "simulate", {"benchmark": "mcf", "core": "ooo"}),
        submit(store, "sweep",
               {"benchmarks": "gcc", "cores": "braid,inorder"}),
    ]
    follower = store.journal.follow()
    followed = list(follower.poll())
    supervisor = Supervisor(store, ServiceConfig(
        jobs=1, drain_when_idle=True, heartbeat=HEARTBEAT,
    ))
    box = {}

    def run():
        try:
            box["summary"] = supervisor.run()
        except BaseException as exc:  # surfaced in the main thread
            box["error"] = exc

    thread = threading.Thread(target=run)
    thread.start()
    live_beats = set()
    polls = 0
    deadline = time.monotonic() + 120.0
    while thread.is_alive():
        if time.monotonic() > deadline:
            fail("serve did not drain within 120s")
        followed.extend(follower.poll())
        polls += 1
        for job_id in jobs:
            beat = read_progress(store.progress_dir, job_id)
            age = heartbeat_age(beat)
            if age is not None and age <= 5 * HEARTBEAT:
                live_beats.add(job_id)
        time.sleep(HEARTBEAT / 5)
    thread.join()
    if "error" in box:
        fail(f"supervisor raised: {box['error']!r}")
    followed.extend(follower.poll())
    return store, jobs, followed, follower, live_beats, polls


def check_heartbeats(store, jobs, live_beats):
    if not live_beats:
        fail("never observed a fresh heartbeat while jobs were running")
    for job_id in jobs:
        beat = read_progress(store.progress_dir, job_id)
        if beat is None:
            fail(f"{job_id}: no final heartbeat file")
        if beat["instructions"] != beat["instructions_total"]:
            fail(
                f"{job_id}: final heartbeat retired "
                f"{beat['instructions']}/{beat['instructions_total']}"
            )
    sweep_beat = read_progress(store.progress_dir, jobs[2])
    if sweep_beat["cells_total"] != 2:
        fail(f"sweep heartbeat cells_total {sweep_beat['cells_total']} != 2")
    print(
        f"service_obs_smoke: heartbeats ok "
        f"({len(live_beats)}/{len(jobs)} jobs seen live, all final)"
    )


def check_event_ordering(store, jobs, followed):
    journal_ids = [id(record) for record in store.journal.records]
    for job_id in jobs:
        events = [
            record for record in store.journal.records
            if record.get("job") == job_id
        ]
        names = [record["event"] for record in events]
        if names[0] != "submit":
            fail(f"{job_id}: first event {names[0]!r}, expected submit")
        if "start" not in names or "done" not in names:
            fail(f"{job_id}: incomplete lifecycle {names}")
        if names.index("start") > names.index("done"):
            fail(f"{job_id}: start after done: {names}")
        monos = [record["mono"] for record in events]
        if monos != sorted(monos):
            fail(f"{job_id}: monotonic stamps run backwards: {monos}")
    # The follower saw the same stream the journal kept (same count and
    # the same settle events), delivered incrementally while serving.
    followed_events = [r for r in followed if "event" in r]
    if len(followed_events) != len(journal_ids):
        fail(
            f"follower delivered {len(followed_events)} events, journal "
            f"holds {len(journal_ids)}"
        )
    done = sum(1 for r in followed_events if r["event"] == "done")
    if done != len(jobs):
        fail(f"follower saw {done} done events, expected {len(jobs)}")
    print(
        f"service_obs_smoke: event ordering ok "
        f"({len(followed_events)} events followed live, stamps monotone)"
    )


def check_metrics(store, jobs):
    try:
        text = store.metrics_path.read_text(encoding="utf-8")
    except OSError as exc:
        fail(f"no metrics exposition published: {exc}")
    errors = prometheus_errors(text)
    if errors:
        fail(f"metrics.prom fails validation: {errors[:5]}")
    samples = parse_prometheus(text)
    if samples.get("repro_service_completed") != float(len(jobs)):
        fail(
            f"exposition says {samples.get('repro_service_completed')} "
            f"completed, expected {len(jobs)}"
        )
    if samples.get('repro_run_ms{stat="weight"}', 0) < len(jobs):
        fail("run_ms histogram missing settled jobs")
    health = read_health(store.health_path)
    if health is None:
        fail("no health.json published")
    if health["pid"] != os.getpid():
        fail(f"health pid {health['pid']} != serving pid {os.getpid()}")
    if health["round"] < 1 or not health["draining"]:
        fail(f"unexpected final health state: {health}")
    print(
        f"service_obs_smoke: metrics ok ({len(samples)} samples, "
        f"validator clean, health round {health['round']})"
    )


def check_non_interference(base):
    """Heartbeats off vs aggressive: result payloads bit-identical."""
    payloads = []
    for name, beat in (("quiet", 0.0), ("chatty", 0.01)):
        store = JobStore(base / name)
        job = submit(store, "simulate",
                     {"benchmark": "gcc", "core": "braid"})
        Supervisor(store, ServiceConfig(
            jobs=1, drain_when_idle=True, heartbeat=beat,
        )).run()
        result = store.result(job)
        if result is None:
            fail(f"{name}: job produced no result")
        payloads.append(json.dumps(result, sort_keys=True))
        store.close()
    if payloads[0] != payloads[1]:
        fail("telemetry changed the result payload")
    print(
        "service_obs_smoke: heartbeats-off and heartbeats-on payloads "
        "bit-identical"
    )


def main() -> int:
    base = Path(tempfile.mkdtemp(prefix="service-obs-smoke-"))
    store, jobs, followed, follower, live_beats, polls = serve_watched(
        base / "store"
    )
    if follower.skipped or follower.rotations:
        fail(
            f"follower skipped {follower.skipped} line(s), saw "
            f"{follower.rotations} rotation(s) on a healthy journal"
        )
    check_heartbeats(store, jobs, live_beats)
    check_event_ordering(store, jobs, followed)
    check_metrics(store, jobs)
    store.close()
    check_non_interference(base)
    print(f"service_obs_smoke: OK ({polls} live polls)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
