#!/usr/bin/env python
"""CI smoke test for the durable simulation service under injected chaos.

Two runs of the same mixed job batch (simulations across every core
paradigm, a sweep, a small fault campaign — every request submitted
twice from two clients, so dedup is exercised end to end):

* a **reference** run: one uninterrupted in-process supervisor;
* a **chaos** run: the supervisor as a subprocess with a deterministic
  fault plan armed — one job's worker is SIGKILLed mid-batch, one job's
  result-store write fails with ENOSPC (simulated disk-quota
  exhaustion), and the supervisor itself is SIGKILLed after its K-th
  settled job.  The driver restarts the supervisor until it drains.

The chaos run must then be indistinguishable from the reference run:

* every job ``done``, with a **bit-identical** result payload;
* the ``coalesced`` counter exactly equals the duplicate submissions
  (dedup survived the kill/restart cycles);
* the killed-worker job retried (attempts >= 2), the ENOSPC job was
  requeued, at least one job was recovered from a dead supervisor, and
  the journal has zero torn lines.

Exits non-zero with a diagnostic on any violated invariant.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [seed]
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service import ChaosSpec, JobRequest, JobStore  # noqa: E402
from repro.service.jobs import normalize_params  # noqa: E402

#: mixed batch: one simulate per registered paradigm, a sweep, a campaign
BATCH = [
    ("simulate", {"benchmark": "gcc", "core": "braid"}),
    ("simulate", {"benchmark": "mcf", "core": "ooo"}),
    ("simulate", {"benchmark": "swim", "core": "inorder"}),
    ("simulate", {"benchmark": "equake", "core": "depsteer"}),
    ("simulate", {"benchmark": "gcc", "core": "blockooo"}),
    ("sweep", {"benchmarks": "gcc,mcf", "cores": "braid,inorder"}),
    ("faults", {"benchmarks": "gcc", "cores": "braid", "runs": 2,
                "seed": 7}),
]
#: tiny sims: the smoke proves recovery protocols, not throughput
SIZING = {"scale": 0.05, "max_instructions": 3000}
KILL_SUPERVISOR_AFTER = 2
MAX_RESTARTS = 8


def fail(message: str) -> None:
    print(f"chaos_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def submit_batch(store: JobStore) -> list:
    """Submit every request twice (two clients); returns the job ids."""
    job_ids = []
    for kind, base in BATCH:
        params = dict(base)
        params["scale"] = SIZING["scale"]
        if kind in ("simulate", "sweep"):
            params["max_instructions"] = SIZING["max_instructions"]
        params = normalize_params(kind, params)
        job_id, coalesced = store.submit(
            JobRequest(kind=kind, params=params, client="ci-a")
        )
        if coalesced:
            fail(f"first submission of {kind} {base} coalesced unexpectedly")
        dup_id, dup_coalesced = store.submit(
            JobRequest(kind=kind, params=params, client="ci-b")
        )
        if not dup_coalesced or dup_id != job_id:
            fail(f"duplicate submission did not coalesce onto {job_id}")
        job_ids.append(job_id)
    return job_ids


def payloads(store: JobStore, job_ids: list) -> dict:
    out = {}
    for job_id in job_ids:
        result = store.result(job_id)
        if result is None:
            fail(f"job {job_id} has no readable result")
        out[job_id] = json.dumps(result, sort_keys=True)
    return out


def run_reference(root: Path, job_ids: list) -> dict:
    from repro.service.retry import RetryPolicy
    from repro.service.supervisor import ServiceConfig, serve

    store = JobStore(root)
    serve(store, ServiceConfig(
        jobs=1, drain_when_idle=True,
        policy=RetryPolicy(deadline=120.0),
    ))
    counters = store.counters()
    reference = {
        "payloads": payloads(store, job_ids),
        "statuses": {j: store.job(j).status for j in job_ids},
        "coalesced": counters["coalesced"],
    }
    store.close()
    return reference


def run_chaos(root: Path, job_ids: list, seed: int) -> tuple:
    """Serve under the fault plan, restarting killed supervisors."""
    rng = random.Random(seed)
    kill_victim = rng.choice(job_ids)
    write_victim = rng.choice([j for j in job_ids if j != kill_victim])
    spec = ChaosSpec(
        kill_worker={kill_victim: 1},
        fail_write={write_victim: 1},
        kill_supervisor_after=KILL_SUPERVISOR_AFTER,
    )
    print(f"chaos plan: {spec.render()}")

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    env.update(spec.environ(root / "chaos-marks"))
    command = [
        sys.executable, "-m", "repro.harness", "serve",
        "--store", str(root), "--drain-when-idle",
        "--jobs", "2", "--timeout", "120",
    ]
    kills = 0
    for attempt in range(MAX_RESTARTS):
        started = time.time()
        proc = subprocess.run(command, env=env, cwd=str(REPO))
        elapsed = time.time() - started
        if proc.returncode == 0:
            print(f"supervisor drained on run {attempt + 1} "
                  f"({elapsed:.1f}s, {kills} kill(s) survived)")
            return kill_victim, write_victim, kills
        if proc.returncode < 0:
            kills += 1
            print(f"supervisor killed by signal {-proc.returncode} "
                  f"on run {attempt + 1} ({elapsed:.1f}s); restarting")
            continue
        fail(f"supervisor exited with unexpected status {proc.returncode}")
    fail(f"supervisor did not drain within {MAX_RESTARTS} restarts")


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as tmp:
        ref_root = Path(tmp) / "reference"
        chaos_root = Path(tmp) / "chaos"

        store = JobStore(ref_root)
        ref_ids = submit_batch(store)
        store.close()
        reference = run_reference(ref_root, ref_ids)

        store = JobStore(chaos_root)
        chaos_ids = submit_batch(store)
        store.close()
        if chaos_ids != ref_ids:
            fail(f"job ids diverged: {ref_ids} vs {chaos_ids}")

        kill_victim, write_victim, kills = run_chaos(
            chaos_root, chaos_ids, seed
        )

        store = JobStore(chaos_root, readonly=True)
        counters = store.counters()
        statuses = {j: store.job(j).status for j in chaos_ids}
        observed = payloads(store, chaos_ids)

        if kills < 1:
            fail("the supervisor was never killed; the chaos plan is inert")
        if statuses != reference["statuses"]:
            fail(f"statuses diverged: {reference['statuses']} vs {statuses}")
        diverged = [
            j for j in chaos_ids if observed[j] != reference["payloads"][j]
        ]
        if diverged:
            fail(f"result payloads diverged for {diverged}")
        expected_coalesced = len(BATCH)
        if counters["coalesced"] != expected_coalesced:
            fail(
                f"dedup counter lost under chaos: expected "
                f"{expected_coalesced} coalesced, got "
                f"{counters['coalesced']}"
            )
        if reference["coalesced"] != expected_coalesced:
            fail(
                f"reference dedup counter wrong: {reference['coalesced']}"
            )
        kill_mark = chaos_root / "chaos-marks" / (
            f"kill-worker-{kill_victim}-0.mark"
        )
        if not kill_mark.exists():
            fail(f"the worker kill for {kill_victim} never fired")
        victim = store.job(kill_victim)
        if victim.attempts < 2 and victim.recovered < 1:
            # The kill fired (mark consumed), so the job must have come
            # back either as a runner-level retry or — when the
            # supervisor died before the retry settled — as a recovery.
            fail(
                f"killed-worker job {kill_victim} shows neither a retry "
                f"nor a recovery (attempts={victim.attempts}, "
                f"recovered={victim.recovered})"
            )
        if counters["requeued"] < 1:
            fail(
                f"ENOSPC on {write_victim} never produced a requeue; "
                f"counters: {counters}"
            )
        if counters["recovered"] < 1:
            fail(
                f"no job was recovered from a dead supervisor; "
                f"counters: {counters}"
            )
        if counters["torn_lines"] != 0:
            fail(f"journal has {counters['torn_lines']} torn line(s)")
        store.close()

        print(
            f"chaos_smoke: PASS: {len(chaos_ids)} job(s) bit-identical to "
            f"the uninterrupted run through {kills} supervisor kill(s), "
            f"1 worker kill, 1 simulated disk-full; "
            f"coalesced={counters['coalesced']} "
            f"recovered={counters['recovered']} "
            f"requeued={counters['requeued']}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
