#!/usr/bin/env python
"""CI smoke test for the scheduler-aware event kernel.

Runs every benchmark of the quick suite on every registered timing core
twice —
once with the event-driven kernel (the default), once with the strictly
ticked reference loop — and diffs the two runs cycle-exact: cycles,
instructions, issue count, every stall counter, and every ``extra``
activity statistic must be bit-identical.  This is the end-to-end guard
for the O(woken) wakeup index and the ``issue_horizon`` publishers: any
skip past a cycle in which the scheduler could have acted shows up here
as a counter diff.

Also reports the per-core wall-clock ratio (event kernel vs ticked) so
CI logs show how much the skip loop is actually buying on each paradigm.

Exits non-zero with a per-core, per-counter diagnostic on any divergence.

Usage::

    PYTHONPATH=src python scripts/wakeup_smoke.py [max_instructions]
"""

from __future__ import annotations

import dataclasses
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.sim.registry import core_registry
from repro.sim.run import build_core

QUICK = ("gcc", "mcf", "swim", "equake")

# every registered paradigm, so a new core gets this guard for free
CORES = {
    key: (descriptor.config_factory(8), descriptor.braided)
    for key, descriptor in core_registry().items()
}


def fail(message: str) -> None:
    print(f"wakeup_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def fingerprint(result) -> dict:
    """Every architectural counter a run produces, flattened for diffing."""
    flat = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "issued": result.issued,
    }
    for field, value in dataclasses.asdict(result.stalls).items():
        flat[f"stalls.{field}"] = value
    for key, value in sorted(result.extra.items()):
        flat[f"extra.{key}"] = value
    return flat


def main() -> None:
    max_instructions = (
        int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    )
    ctx = ExperimentContext(
        benchmarks=QUICK,
        max_instructions=max_instructions,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )
    divergences = 0
    for kind, (config, braided) in CORES.items():
        event_seconds = 0.0
        ticked_seconds = 0.0
        for name in QUICK:
            workload = ctx.workload(name, braided=braided)

            core = build_core(workload, config)
            assert core.event_kernel, "event kernel should be the default"
            started = time.perf_counter()
            fast = fingerprint(core.run())
            event_seconds += time.perf_counter() - started

            core = build_core(workload, config)
            core.event_kernel = False
            started = time.perf_counter()
            slow = fingerprint(core.run())
            ticked_seconds += time.perf_counter() - started

            if fast != slow:
                divergences += 1
                diffs = [
                    f"    {counter}: event={fast.get(counter)!r} "
                    f"ticked={slow.get(counter)!r}"
                    for counter in sorted(fast.keys() | slow.keys())
                    if fast.get(counter) != slow.get(counter)
                ]
                print(
                    f"wakeup_smoke: {name}/{kind} diverged on "
                    f"{len(diffs)} counter(s):",
                    file=sys.stderr,
                )
                for line in diffs:
                    print(line, file=sys.stderr)
        ratio = ticked_seconds / event_seconds if event_seconds else 0.0
        print(
            f"wakeup_smoke: {kind}: bit-identical across {len(QUICK)} "
            f"benchmarks; event kernel {ratio:.2f}x vs ticked "
            f"({event_seconds:.2f}s vs {ticked_seconds:.2f}s)"
        )
    if divergences:
        fail(f"{divergences} run(s) diverged between kernels")
    print("wakeup smoke OK")


if __name__ == "__main__":
    main()
