#!/usr/bin/env python
"""CI smoke test for the observability layer.

Two checks, both cheap enough for every push:

1. **Export schema** — the Chrome trace JSON written by
   ``python -m repro.harness trace`` (path passed as argv[1]) passes the
   schema validator and actually contains events.
2. **Non-interference** — a traced+attributed run of one benchmark is
   bit-identical to the plain run (cycles, instructions, IPC), and the
   CPI-stack components sum to the cycle count exactly.

Exits non-zero with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py trace-gcc-braid.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.obs import Observer, chrome_schema_errors
from repro.sim.config import braid_config
from repro.sim.run import simulate


def fail(message: str) -> None:
    print(f"obs_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_chrome_export(path: Path) -> None:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        fail(f"cannot load chrome trace {path}: {exc}")
    errors = chrome_schema_errors(doc)
    if errors:
        fail(f"{path} violates the Chrome trace schema: {errors[:5]}")
    if not doc.get("traceEvents"):
        fail(f"{path} has no traceEvents")
    print(f"obs_smoke: {path}: {len(doc['traceEvents'])} events, schema ok")


def check_non_interference() -> None:
    ctx = ExperimentContext(
        benchmarks=("gcc",),
        max_instructions=20_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )
    workload = ctx.workload("gcc", braided=True)
    config = braid_config(8)
    plain = simulate(workload, config)
    observe = Observer(trace=True, cpi=True, metrics=True)
    traced = simulate(workload, config, observe=observe)
    for field in ("cycles", "instructions", "issued", "ipc"):
        if getattr(plain, field) != getattr(traced, field):
            fail(
                f"observer changed {field}: "
                f"{getattr(plain, field)} -> {getattr(traced, field)}"
            )
    total = sum(traced.cpi_stack.values())
    if total != traced.cycles:
        fail(f"cpi_stack sums to {total}, expected {traced.cycles} cycles")
    print(
        "obs_smoke: traced run bit-identical to plain "
        f"({traced.cycles} cycles), cpi_stack sums exactly"
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        fail("usage: obs_smoke.py <chrome-trace.json>")
    check_chrome_export(Path(argv[0]))
    check_non_interference()
    print("obs_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
