#!/usr/bin/env python
"""CI smoke test for the fidelity ladder (exact / sampled / interval).

Runs one benchmark through all three fidelity tiers on the out-of-order
core and checks the contracts that make the cheap tiers trustworthy:

1. **Coverage** — every tier reports the full instruction count and
   labels its result with the right ``SimResult.fidelity``.
2. **Honesty** — the interval tier's actual IPC error against exact is
   within its *stated* error bound, and the sampled tier's error is
   within a loose sanity ceiling.
3. **Accounting** — the interval tier's model-derived CPI stack sums
   exactly to its estimated cycle count.

Then sweeps the whole quick suite across every registered core kind and
re-checks honesty on *every* interval run — a stated bound is only worth
printing if no run anywhere exceeds it — and finally pins the recorded
bench-scale mcf bounds in ``BENCH_SPEED.json`` against the hard-coded
pre-latency-covariate baseline: the latency-aware covariate exists to
narrow memory-bound bounds, and a regression that silently re-widens
them must fail CI, not a reviewer's eyeball.

Exits non-zero with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/fidelity_smoke.py [benchmark]
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.sim.config import ooo_config
from repro.sim.registry import core_registry
from repro.sim.run import simulate
from repro.sim.sampling import SamplingConfig

#: sampled mode has no per-run stated bound; its stride-4 error on the
#: quick benchmarks is well under 1%, so 5% flags real breakage only
SAMPLED_ERROR_CEILING_PCT = 5.0

QUICK = ("gcc", "mcf", "swim", "equake")

#: mcf interval-tier stated bounds recorded at bench scale *before* the
#: analytic proxy-pipeline covariate landed (BENCH_SPEED.json at the
#: event-kernel PR).  The covariate's whole point is narrower honest
#: bounds on memory-bound benchmarks; the recorded report must stay
#: strictly below these (inorder was already at the configured floor,
#: so "no wider" is the strongest available claim there).  Only the
#: paper's four paradigms appear: cores that post-date the covariate
#: (blockooo) have no pre-covariate bound to shrink from — they are
#: covered by the honesty sweep instead.
MCF_BOUND_BASELINE_PCT = {
    "ooo": 18.8,
    "inorder": 10.0,
    "depsteer": 17.5,
    "braid": 29.8,
}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    ctx = ExperimentContext(
        benchmarks=(benchmark,),
        scale=8,
        max_instructions=200_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )
    workload = ctx.workload(benchmark)
    config = ooo_config(8)

    exact = simulate(workload, config, fidelity="exact")
    sampled = simulate(
        workload, config, fidelity="sampled",
        sampling=SamplingConfig(stride=4),
    )
    analytic = simulate(workload, config, fidelity="interval")

    for tier, result in (
        ("exact", exact), ("sampled", sampled), ("interval", analytic)
    ):
        if result.fidelity != tier:
            fail(f"{tier} run labelled fidelity={result.fidelity!r}")
        if result.instructions != exact.instructions:
            fail(
                f"{tier} covered {result.instructions} instructions, "
                f"exact covered {exact.instructions}"
            )

    def error_pct(estimate) -> float:
        return 100.0 * abs(estimate.ipc - exact.ipc) / exact.ipc

    print(f"{benchmark} on {config.name} ({exact.instructions} insts):")
    print(f"  exact    ipc={exact.ipc:.4f}")
    print(
        f"  sampled  ipc={sampled.ipc:.4f}  "
        f"error={error_pct(sampled):.2f}%"
    )
    if analytic.extra.get("interval_fallback_exact"):
        fail(
            "interval tier fell back to exact — trace too short for the "
            "calibration planner; raise the smoke scale"
        )
    bound = analytic.extra["interval_error_bound_pct"]
    print(
        f"  interval ipc={analytic.ipc:.4f}  "
        f"error={error_pct(analytic):.2f}%  stated bound={bound:.1f}%"
    )

    if error_pct(sampled) > SAMPLED_ERROR_CEILING_PCT:
        fail(
            f"sampled IPC error {error_pct(sampled):.2f}% exceeds the "
            f"{SAMPLED_ERROR_CEILING_PCT}% sanity ceiling"
        )
    if error_pct(analytic) > bound:
        fail(
            f"interval IPC error {error_pct(analytic):.2f}% exceeds its "
            f"stated bound {bound:.2f}%"
        )
    if analytic.cpi_stack is None:
        fail("interval run shipped no model CPI stack")
    total = sum(analytic.cpi_stack.values())
    if not math.isclose(total, analytic.cycles, rel_tol=1e-9):
        fail(
            f"interval CPI stack sums to {total}, "
            f"estimated cycles are {analytic.cycles}"
        )

    check_interval_honesty_sweep()
    check_recorded_mcf_bounds()
    print("fidelity smoke OK")


def check_interval_honesty_sweep() -> None:
    """Every interval run of the sweep keeps realized error ≤ stated."""
    ctx = ExperimentContext(
        benchmarks=QUICK,
        scale=8,
        max_instructions=200_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )
    # every registered paradigm: a stated bound is only worth printing
    # if no run on any core kind exceeds it
    cores = {
        key: (descriptor.config_factory(8), descriptor.braided)
        for key, descriptor in core_registry().items()
    }
    print("interval honesty sweep (scale 8, quick suite):")
    for name in QUICK:
        for kind, (config, braided) in cores.items():
            workload = ctx.workload(name, braided=braided)
            exact = simulate(workload, config, fidelity="exact")
            analytic = simulate(workload, config, fidelity="interval")
            if analytic.extra.get("interval_fallback_exact"):
                fail(f"{name}/{kind}: interval tier fell back to exact")
            stated = analytic.extra["interval_error_bound_pct"]
            realized = (
                100.0 * abs(analytic.ipc - exact.ipc) / exact.ipc
                if exact.ipc else 0.0
            )
            print(
                f"  {name}/{kind}: realized {realized:.2f}% "
                f"<= stated {stated:.1f}%"
                if realized <= stated else
                f"  {name}/{kind}: realized {realized:.2f}% "
                f"EXCEEDS stated {stated:.1f}%"
            )
            if realized > stated:
                fail(
                    f"{name}/{kind}: interval error {realized:.2f}% "
                    f"exceeds its stated bound {stated:.1f}%"
                )


def check_recorded_mcf_bounds() -> None:
    """The recorded bench-scale mcf bounds stay below the pre-covariate
    baseline (strictly, where the baseline sat above the floor)."""
    report_path = Path(__file__).resolve().parent.parent / "BENCH_SPEED.json"
    if not report_path.exists():
        fail(f"{report_path} missing — cannot check recorded mcf bounds")
    points = json.loads(report_path.read_text())["fidelity_tiers"]["points"]
    floor = min(MCF_BOUND_BASELINE_PCT.values())
    for kind, baseline in MCF_BOUND_BASELINE_PCT.items():
        entry = points.get(f"mcf/{kind}")
        if entry is None:
            fail(f"BENCH_SPEED.json has no mcf/{kind} fidelity point")
        stated = entry["interval_stated_bound_pct"]
        strict = baseline > floor
        ok = stated < baseline if strict else stated <= baseline
        print(
            f"  mcf/{kind}: recorded bound {stated:.1f}% "
            f"{'<' if strict else '<='} baseline {baseline:.1f}%"
            + ("" if ok else "  VIOLATED")
        )
        if not ok:
            fail(
                f"mcf/{kind}: recorded interval bound {stated:.1f}% did "
                f"not shrink vs the pre-covariate baseline "
                f"{baseline:.1f}% — the latency-aware covariate "
                "regressed"
            )


if __name__ == "__main__":
    main()
