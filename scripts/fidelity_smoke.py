#!/usr/bin/env python
"""CI smoke test for the fidelity ladder (exact / sampled / interval).

Runs one benchmark through all three fidelity tiers on the out-of-order
core and checks the contracts that make the cheap tiers trustworthy:

1. **Coverage** — every tier reports the full instruction count and
   labels its result with the right ``SimResult.fidelity``.
2. **Honesty** — the interval tier's actual IPC error against exact is
   within its *stated* error bound, and the sampled tier's error is
   within a loose sanity ceiling.
3. **Accounting** — the interval tier's model-derived CPI stack sums
   exactly to its estimated cycle count.

Exits non-zero with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/fidelity_smoke.py [benchmark]
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.sim.config import ooo_config
from repro.sim.run import simulate
from repro.sim.sampling import SamplingConfig

#: sampled mode has no per-run stated bound; its stride-4 error on the
#: quick benchmarks is well under 1%, so 5% flags real breakage only
SAMPLED_ERROR_CEILING_PCT = 5.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    ctx = ExperimentContext(
        benchmarks=(benchmark,),
        scale=8,
        max_instructions=200_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )
    workload = ctx.workload(benchmark)
    config = ooo_config(8)

    exact = simulate(workload, config, fidelity="exact")
    sampled = simulate(
        workload, config, fidelity="sampled",
        sampling=SamplingConfig(stride=4),
    )
    analytic = simulate(workload, config, fidelity="interval")

    for tier, result in (
        ("exact", exact), ("sampled", sampled), ("interval", analytic)
    ):
        if result.fidelity != tier:
            fail(f"{tier} run labelled fidelity={result.fidelity!r}")
        if result.instructions != exact.instructions:
            fail(
                f"{tier} covered {result.instructions} instructions, "
                f"exact covered {exact.instructions}"
            )

    def error_pct(estimate) -> float:
        return 100.0 * abs(estimate.ipc - exact.ipc) / exact.ipc

    print(f"{benchmark} on {config.name} ({exact.instructions} insts):")
    print(f"  exact    ipc={exact.ipc:.4f}")
    print(
        f"  sampled  ipc={sampled.ipc:.4f}  "
        f"error={error_pct(sampled):.2f}%"
    )
    if analytic.extra.get("interval_fallback_exact"):
        fail(
            "interval tier fell back to exact — trace too short for the "
            "calibration planner; raise the smoke scale"
        )
    bound = analytic.extra["interval_error_bound_pct"]
    print(
        f"  interval ipc={analytic.ipc:.4f}  "
        f"error={error_pct(analytic):.2f}%  stated bound={bound:.1f}%"
    )

    if error_pct(sampled) > SAMPLED_ERROR_CEILING_PCT:
        fail(
            f"sampled IPC error {error_pct(sampled):.2f}% exceeds the "
            f"{SAMPLED_ERROR_CEILING_PCT}% sanity ceiling"
        )
    if error_pct(analytic) > bound:
        fail(
            f"interval IPC error {error_pct(analytic):.2f}% exceeds its "
            f"stated bound {bound:.2f}%"
        )
    if analytic.cpi_stack is None:
        fail("interval run shipped no model CPI stack")
    total = sum(analytic.cpi_stack.values())
    if not math.isclose(total, analytic.cycles, rel_tol=1e-9):
        fail(
            f"interval CPI stack sums to {total}, "
            f"estimated cycles are {analytic.cycles}"
        )

    print("fidelity smoke OK")


if __name__ == "__main__":
    main()
